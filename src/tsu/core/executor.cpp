#include "tsu/core/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string_view>
#include <unordered_map>

#include "tsu/controller/plan_cache.hpp"
#include "tsu/core/service.hpp"
#include "tsu/sim/sharded.hpp"
#include "tsu/sim/simulator.hpp"
#include "tsu/sim/thread_pool.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/topo/partition.hpp"
#include "tsu/update/schedulers.hpp"
#include "tsu/util/arena.hpp"
#include "tsu/util/log.hpp"

namespace tsu::core {

namespace {

flow::FlowRule rule_from_mod(const proto::FlowMod& mod) {
  return flow::FlowRule{mod.match, mod.action, mod.priority, mod.cookie};
}

// Everything one simulated run needs, wired together. The switches are
// partitioned across config.controller.shards controller shards; each
// switch, its duplex channel and its owning shard live on that shard's
// event queue of the sharded logical clock.
struct Harness {
  sim::ShardedSim sim;
  Rng rng;
  topo::SwitchPartition partition;
  // Per-shard setup arenas own every switch and channel (util/arena.hpp):
  // setup allocates per chunk instead of per object, each shard's objects
  // sit contiguous, and teardown is wholesale. Declared before ctrl so the
  // coordinator (whose send closures point into the arenas) dies first.
  std::vector<std::unique_ptr<util::SetupArena>> arenas;  // by shard
  std::vector<switchsim::SimSwitch*> switches;            // by NodeId
  std::vector<channel::DuplexChannel*> channels;          // creation order
  std::vector<channel::DuplexChannel*> duplex_by_node;    // fault injection
  std::unique_ptr<controller::ShardCoordinator> ctrl;
  // controller.speculate: switch->controller deliveries become shard-local
  // (see add_switch). Captured from the ADJUSTED controller config the
  // coordinator runs with, not the caller's original.
  bool speculate = false;

  Harness(const ExecutorConfig& config,
          const controller::ControllerConfig& controller_config,
          topo::SwitchPartition switch_partition)
      : sim(switch_partition.shards()),
        rng(config.seed),
        partition(std::move(switch_partition)),
        speculate(controller_config.speculate) {
    sim.set_steal(controller_config.steal);
    arenas.reserve(sim.shard_count());
    for (std::size_t s = 0; s < sim.shard_count(); ++s)
      arenas.push_back(std::make_unique<util::SetupArena>());
    ctrl = std::make_unique<controller::ShardCoordinator>(sim, partition,
                                                          controller_config);
  }

  // The event queue everything owned by `node`'s shard schedules on.
  sim::Simulator& sim_of(NodeId node) {
    return sim.shard(partition.shard_of(node));
  }

  void add_switch(NodeId node, const ExecutorConfig& config) {
    if (node < switches.size() && switches[node] != nullptr) return;
    if (switches.size() <= node) {
      switches.resize(node + 1, nullptr);
      duplex_by_node.resize(node + 1, nullptr);
    }

    sim::Simulator& shard_sim = sim_of(node);
    util::SetupArena& arena = *arenas[partition.shard_of(node)];
    switchsim::SimSwitch* sw_ptr = arena.make<switchsim::SimSwitch>(
        shard_sim, node, static_cast<DatapathId>(node), config.switch_config,
        rng.fork());
    channel::DuplexChannel* duplex_ptr =
        arena.make<channel::DuplexChannel>(shard_sim, config.channel, rng);
    controller::ShardCoordinator* ctrl_ptr = ctrl.get();

    // Controller->switch deliveries stay on the switch's own shard and
    // only touch its state: safe inside parallel epochs. The reply
    // direction keeps the kShared default - reply processing can complete
    // updates and cross shards through the coordinator - UNLESS the
    // controller speculates: then the engine defers round/resync
    // completion to the next sync point (controller.cpp), every other
    // effect of a reply is provably shard-local, and replies may process
    // mid-epoch too, eliminating the biggest class of horizon stalls.
    duplex_ptr->to_switch.set_delivery_scope(sim::EventScope::kLocal);
    if (speculate)
      duplex_ptr->to_controller.set_delivery_scope(sim::EventScope::kLocal);
    duplex_ptr->to_switch.set_receiver(
        [sw_ptr](const proto::Message& m) { sw_ptr->receive(m); });
    duplex_ptr->to_controller.set_receiver(
        [ctrl_ptr, node](const proto::Message& m) {
          ctrl_ptr->on_message(node, m);
        });
    sw_ptr->set_controller_link([duplex_ptr](const proto::Message& m) {
      duplex_ptr->to_controller.send(m);
    });
    ctrl->attach_switch(node, [duplex_ptr](const proto::Message& m) {
      duplex_ptr->to_switch.send(m);
    });
    // Zero-encode fast path for compiled-plan submissions: the controller
    // hands the channel a pre-encoded frame plus the xid to patch into it,
    // skipping make_flow_mod/encode entirely (channel.hpp send_encoded).
    ctrl->attach_switch_encoded(
        node, [duplex_ptr](std::span<const std::byte> bytes, Xid xid) {
          duplex_ptr->to_switch.send_encoded(bytes, xid);
        });

    switches[node] = sw_ptr;
    duplex_by_node[node] = duplex_ptr;
    channels.push_back(duplex_ptr);
  }

  void install_initial(const update::Instance& inst, FlowId flow,
                       std::uint16_t priority) {
    for (const controller::RoundOp& op :
         controller::initial_rules(inst, flow, priority)) {
      switches[op.node]->table().add(rule_from_mod(op.mod));
      // Mirror the out-of-band install into the controller's shadow tables
      // (a no-op unless fault tolerance is on) so a crash resync can
      // reconstruct pre-update state too.
      ctrl->seed_shadow(op.node, op.mod);
    }
  }

  std::size_t total_frames() const {
    std::size_t frames = 0;
    for (const auto& duplex : channels)
      frames += duplex->to_switch.frames_sent() +
                duplex->to_controller.frames_sent();
    return frames;
  }

  std::size_t total_bytes() const {
    std::size_t bytes = 0;
    for (const auto& duplex : channels)
      bytes += duplex->to_switch.bytes_sent() +
               duplex->to_controller.bytes_sent();
    return bytes;
  }

  std::size_t total_messages() const {
    std::size_t messages = 0;
    for (const auto& duplex : channels)
      messages += duplex->to_switch.messages_sent() +
                  duplex->to_controller.messages_sent();
    return messages;
  }
};

// FNV-1a mixing of one 64-bit word into a running digest.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (v >> shift) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t rule_hash(const flow::FlowRule& rule) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix_optional = [&h](const auto& field) {
    h = mix(h, field.has_value() ? 1 : 0);
    h = mix(h, field.has_value() ? static_cast<std::uint64_t>(*field) : 0);
  };
  mix_optional(rule.match.flow);
  mix_optional(rule.match.src_host);
  mix_optional(rule.match.dst_host);
  mix_optional(rule.match.in_port);
  h = mix(h, static_cast<std::uint64_t>(rule.action.kind));
  h = mix(h, rule.action.port);
  h = mix(h, rule.priority);
  h = mix(h, rule.cookie);
  return h;
}

// Digest of every switch's final forwarding state. Within one table the
// per-rule hashes combine commutatively (wrapping sum): rules from
// independent flows may be installed in any interleaving, and the same rule
// SET must digest identically whatever order batching delivered it in.
std::uint64_t final_state_digest(const Harness& harness) {
  std::uint64_t h = 1469598103934665603ull;
  for (NodeId node = 0; node < harness.switches.size(); ++node) {
    const switchsim::SimSwitch* sw = harness.switches[node];
    if (sw == nullptr) continue;
    h = mix(h, node);
    for (const auto& [table_id, table] : sw->tables()) {
      // Emptied tables stay resident for capacity reuse (proto/apply.cpp);
      // logically they are state never touched, so they digest as absent.
      if (table.empty()) continue;
      h = mix(h, table_id);
      h = mix(h, table.size());
      std::uint64_t rules = 0;
      for (const flow::FlowRule& rule : table.rules())
        rules += rule_hash(rule);
      h = mix(h, rules);
    }
  }
  return h;
}

void add_instance_switches(Harness& harness, const update::Instance& inst,
                           const ExecutorConfig& config) {
  for (NodeId v = 0; v < inst.node_count(); ++v)
    if (inst.on_old(v) || inst.on_new(v)) harness.add_switch(v, config);
}

// Per-flow traffic sources feeding one MultiFlowMonitor; flow i of the run
// is config.flow + i.
std::vector<std::unique_ptr<dataplane::TrafficSource>> make_sources(
    Harness& harness, dataplane::MultiFlowMonitor& monitors,
    const std::vector<const update::Instance*>& instances,
    const ExecutorConfig& config) {
  std::vector<std::unique_ptr<dataplane::TrafficSource>> sources;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const FlowId flow = config.flow + i;
    dataplane::ConsistencyMonitor& monitor = monitors.monitor(flow);
    if (!config.with_traffic) continue;
    const update::Instance& inst = *instances[i];
    dataplane::TrafficConfig traffic;
    traffic.flow = flow;
    traffic.ingress = inst.source();
    traffic.egress = inst.destination();
    traffic.waypoint = inst.waypoint();
    traffic.interarrival = config.traffic_interarrival;
    traffic.link_latency = config.link_latency;
    traffic.ttl = config.ttl;
    traffic.start = 0;
    traffic.stop = std::numeric_limits<sim::SimTime>::max();
    // A flow's injection lives on its ingress switch's shard queue; hops
    // then follow the packet onto whichever shard owns each switch, with
    // cross-shard hand-offs through the group mailboxes (traffic.hpp).
    sources.push_back(std::make_unique<dataplane::TrafficSource>(
        harness.sim, harness.partition, harness.switches, traffic,
        harness.rng.fork(), monitor));
  }
  return sources;
}

// The shared engine behind every execute_* entry point: wire the control
// plane, run per-policy traffic, submit every prepared request at the end
// of the warmup, and route completed metrics back by key flow. A request
// may cover one policy (execute_queue / execute_multiflow) or several (a
// merged multi-policy request); either way it goes through the controller's
// admission path, so merged and independent requests compose.
struct EngineRequest {
  controller::UpdateRequest request;
  std::vector<std::size_t> policies;  // instance indexes this request updates
};

struct EngineOutput {
  std::vector<controller::UpdateMetrics> updates;  // per request, input order
  dataplane::MonitorReport aggregate;
  std::vector<dataplane::MonitorReport> traffic;   // per policy
  std::vector<std::vector<dataplane::ConsistencyMonitor::Bucket>> timelines;
  sim::Duration timeline_bucket = 0;
  std::vector<std::size_t> packets_injected;       // per policy
  std::size_t frames_sent = 0;
  std::size_t control_bytes = 0;
  std::size_t messages_sent = 0;
  std::size_t max_in_flight_observed = 0;
  std::uint64_t conflict_edges = 0;
  std::uint64_t blocked_submissions = 0;
  BatchingStats batching;
  ShardStats sharding;
  sim::FaultStats faults;
  std::uint64_t state_digest = 0;
  std::uint64_t initial_digest = 0;
  sim::Duration makespan = 0;
};

// The workload's switch co-occurrence graph: one weighted edge per switch
// pair some instance touches together. Input of the greedy-cut partitioner
// and of the cut-size accounting in ShardStats.
std::vector<topo::SwitchAffinity> affinity_edges(
    const std::vector<const update::Instance*>& instances) {
  std::unordered_map<std::uint64_t, std::size_t> weights;
  for (const update::Instance* inst : instances) {
    std::vector<NodeId> touched;
    for (NodeId v = 0; v < inst->node_count(); ++v)
      if (inst->on_old(v) || inst->on_new(v)) touched.push_back(v);
    for (std::size_t i = 0; i < touched.size(); ++i)
      for (std::size_t j = i + 1; j < touched.size(); ++j) {
        const NodeId lo = std::min(touched[i], touched[j]);
        const NodeId hi = std::max(touched[i], touched[j]);
        ++weights[(static_cast<std::uint64_t>(lo) << 32) | hi];
      }
  }
  std::vector<topo::SwitchAffinity> edges;
  edges.reserve(weights.size());
  for (const auto& [key, weight] : weights)
    edges.push_back(topo::SwitchAffinity{
        static_cast<NodeId>(key >> 32),
        static_cast<NodeId>(key & 0xffffffffull), weight});
  // The map iterates in hash order; sort so the partitioner's input - and
  // with it the partition itself - is deterministic.
  std::sort(edges.begin(), edges.end(),
            [](const topo::SwitchAffinity& a, const topo::SwitchAffinity& b) {
              if (a.a != b.a) return a.a < b.a;
              return a.b < b.b;
            });
  return edges;
}

// The lower bound on any cross-shard interaction a kLocal event can
// create: switch replies mature one channel latency after the send, and a
// packet's next hop one link latency after the current one. The parallel
// stepper widens its epochs to exactly this bound (sim/sharded.hpp);
// unbounded-below latency models collapse it to 0, which degenerates to
// sequential stepping - correct, just not concurrent.
sim::Duration cross_shard_lookahead(const ExecutorConfig& config) {
  sim::Duration lookahead = config.channel.latency.min_delay();
  if (config.with_traffic)
    lookahead = std::min(lookahead, config.link_latency.min_delay());
  return lookahead;
}

Result<EngineOutput> run_engine(
    const std::vector<const update::Instance*>& instances,
    std::vector<EngineRequest> requests, const ExecutorConfig& config,
    const controller::ControllerConfig& base_controller_config) {
  if (instances.empty() || requests.empty())
    return make_error(Errc::kInvalidArgument,
                      "need non-empty instance and request lists");
  if (base_controller_config.shards > proto::kMaxXidShards)
    return make_error(Errc::kOutOfRange, "shards must be in [1, 256]");

  // A non-empty fault schedule needs detection to be on, or a crashed
  // switch's lost barrier would stall its update forever and the run could
  // never drain. 25 ms comfortably exceeds a healthy barrier round-trip
  // under the default channel latencies.
  controller::ControllerConfig controller_config = base_controller_config;
  if (!config.faults.empty() && controller_config.liveness_timeout == 0)
    controller_config.liveness_timeout = sim::milliseconds(25);

  // The block partitioner carves contiguous NodeId ranges, so it needs the
  // extent of the id space the instances use.
  std::size_t node_count = 0;
  for (const update::Instance* inst : instances)
    node_count = std::max(node_count, inst->node_count());

  const std::size_t shard_count =
      controller_config.shards == 0 ? 1 : controller_config.shards;
  const std::vector<topo::SwitchAffinity> affinity =
      affinity_edges(instances);
  topo::SwitchPartition partition =
      controller_config.partition == topo::PartitionScheme::kGreedyCut
          ? topo::make_greedy_cut_partition(shard_count, node_count, affinity)
          : topo::SwitchPartition(shard_count, controller_config.partition,
                                  node_count);

  Harness harness(config, controller_config, std::move(partition));
  for (const update::Instance* inst : instances)
    add_instance_switches(harness, *inst, config);
  for (std::size_t i = 0; i < instances.size(); ++i)
    harness.install_initial(*instances[i], config.flow + i, config.priority);
  const std::uint64_t initial_digest = final_state_digest(harness);

  // Fault injection (sim/faults.hpp): each scheduled fault becomes events
  // on the target switch's shard. A crash (optionally retaining the TCAM)
  // takes the switch and both control-channel directions down, then brings
  // them back `down_for` later and the switch announces a fresh session; a
  // link outage does the same to the channels only; a blackhole silently
  // eats the next frames towards the switch. Every fault schedules its own
  // recovery, so runs always drain. An empty schedule adds NO events and
  // keeps every digest bit-identical.
  sim::FaultStats fault_stats;
  std::vector<sim::SimTime> down_at(harness.switches.size(), 0);
  // uint8_t, not bool: neighbouring vector<bool> bits share a byte, which
  // TSan would flag if fault handlers ever ran on different shards' lanes.
  std::vector<std::uint8_t> is_down(harness.switches.size(), 0);
  if (!config.faults.empty()) {
    for (const sim::FaultEvent& e : config.faults.events())
      if (e.node >= harness.switches.size() ||
          harness.switches[e.node] == nullptr)
        return make_error(Errc::kInvalidArgument,
                          "fault schedule targets an unknown switch");
    // A barrier-confirmed resync returns the switch to service (its tables
    // provably match the shadow again) and clocks the recovery.
    harness.ctrl->set_on_switch_resynced([&](NodeId node) {
      harness.switches[node]->set_serving(true);
      if (is_down[node]) {
        is_down[node] = false;
        fault_stats.recovery_ms.push_back(
            sim::to_ms(harness.sim_of(node).now() - down_at[node]));
      }
    });
    for (const sim::FaultEvent& e : config.faults.events()) {
      const std::size_t shard = harness.partition.shard_of(e.node);
      channel::DuplexChannel* duplex = harness.duplex_by_node[e.node];
      switchsim::SimSwitch* sw = harness.switches[e.node];
      switch (e.kind) {
        case sim::FaultKind::kSwitchCrash:
          harness.sim.schedule_on(shard, e.at, [&, duplex, sw, e]() {
            ++fault_stats.crashes;
            down_at[e.node] = harness.sim_of(e.node).now();
            is_down[e.node] = true;
            duplex->to_switch.set_down(true);
            duplex->to_controller.set_down(true);
            sw->crash(e.lose_state);
          });
          harness.sim.schedule_on(shard, e.at + e.down_for,
                                  [duplex, sw]() {
                                    duplex->to_switch.set_down(false);
                                    duplex->to_controller.set_down(false);
                                    sw->restart();
                                  });
          break;
        case sim::FaultKind::kLinkDown:
          harness.sim.schedule_on(shard, e.at, [&, duplex, e]() {
            ++fault_stats.link_downs;
            down_at[e.node] = harness.sim_of(e.node).now();
            is_down[e.node] = true;
            duplex->to_switch.set_down(true);
            duplex->to_controller.set_down(true);
          });
          // The switch itself never died (its tables still forward; it
          // stays in service), but in-flight acks are gone - announcing a
          // fresh session makes the controller re-fence the uncertainty.
          harness.sim.schedule_on(shard, e.at + e.down_for,
                                  [duplex, sw]() {
                                    duplex->to_switch.set_down(false);
                                    duplex->to_controller.set_down(false);
                                    sw->announce();
                                  });
          break;
        case sim::FaultKind::kBlackhole:
          harness.sim.schedule_on(shard, e.at, [&, duplex, e]() {
            ++fault_stats.blackholes;
            duplex->to_switch.drop_next(e.frames);
          });
          break;
      }
    }
  }

  dataplane::MultiFlowMonitor monitors;
  std::vector<std::unique_ptr<dataplane::TrafficSource>> sources =
      make_sources(harness, monitors, instances, config);

  // Requests are identified in the completed list by their key flow (a
  // request's `flow` is the first flow it updates; each policy belongs to
  // exactly one request, so key flows are unique).
  std::vector<FlowId> key_flows;
  key_flows.reserve(requests.size());
  for (const EngineRequest& r : requests)
    key_flows.push_back(r.request.flow);

  // Collect completions as they happen (the controller's own retained
  // window is a bounded ring, so a closed-loop run with more requests than
  // the ring capacity must not read results back from it), and stop
  // injecting `drain` after the last update completes.
  std::vector<controller::UpdateMetrics> done_metrics;
  done_metrics.reserve(requests.size());
  harness.ctrl->set_on_update_done(
      [&](const controller::UpdateMetrics& metrics) {
        done_metrics.push_back(metrics);
        if (done_metrics.size() != requests.size()) return;
        // Give in-flight packets and the monitor a drain window.
        // (set_stop is monotone: injection checks the new bound.)
        for (auto& source : sources)
          if (source) source->set_stop(harness.sim.now() + config.drain);
      });

  for (auto& source : sources)
    if (source) source->start();

  // Submit all requests at the end of the warmup (the paper's queue: they
  // arrive together; how many progress at once is the controller's
  // max_in_flight under its admission policy). Each request's submission
  // event lands on its HOME shard - the lowest shard its FlowMods touch -
  // so warmup submissions no longer serialize through shard 0's queue;
  // merged order at the shared warmup instant stays deterministic (shard
  // ascending, then input order within a shard). Submission events are
  // kShared: submitting reaches the coordinator and can start work on
  // several shards at once.
  std::vector<std::vector<std::size_t>> by_home(harness.sim.shard_count());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    std::size_t home = harness.sim.shard_count();
    for (const std::vector<controller::RoundOp>& round :
         requests[i].request.rounds)
      for (const controller::RoundOp& op : round)
        home = std::min(home, harness.partition.shard_of(op.node));
    by_home[home == harness.sim.shard_count() ? 0 : home].push_back(i);
  }
  for (std::size_t s = 0; s < by_home.size(); ++s) {
    if (by_home[s].empty()) continue;
    harness.sim.schedule_on(s, config.warmup, [&, s]() {
      for (const std::size_t i : by_home[s])
        harness.ctrl->submit(std::move(requests[i].request));
    });
  }

  const bool parallel =
      controller_config.exec == sim::ExecMode::kParallel;
  // An epoch dispatches exactly shard_count tasks, so more lanes than
  // shards would only sleep; the clamp also keeps a typo'd `threads`
  // from asking the OS for an absurd thread count.
  const std::size_t pool_threads =
      !parallel ? 1
      : controller_config.threads != 0
          ? std::min(controller_config.threads, harness.sim.shard_count())
          : std::min(harness.sim.shard_count(),
                     sim::ThreadPool::hardware_threads());
  const auto wall_start = std::chrono::steady_clock::now();
  if (parallel) {
    sim::ThreadPool pool(pool_threads);
    harness.sim.run_parallel(pool, cross_shard_lookahead(config));
  } else {
    harness.sim.run();
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();

  if (!harness.ctrl->idle() || done_metrics.size() != requests.size())
    return make_error(Errc::kFailedPrecondition,
                      "simulation drained before all updates completed");

  // Completion order need not match submission order when updates run
  // concurrently; route metrics back to their request by key flow.
  std::unordered_map<FlowId, const controller::UpdateMetrics*> by_flow;
  for (const controller::UpdateMetrics& m : done_metrics)
    by_flow[m.flow] = &m;

  EngineOutput out;
  out.frames_sent = harness.total_frames();
  out.control_bytes = harness.total_bytes();
  out.messages_sent = harness.total_messages();
  out.max_in_flight_observed = harness.ctrl->max_in_flight_observed();
  out.conflict_edges = harness.ctrl->conflict_edges();
  out.blocked_submissions = harness.ctrl->blocked_submissions();
  out.batching.batches_sent = harness.ctrl->batches_sent();
  out.batching.messages_coalesced = harness.ctrl->messages_coalesced();
  out.batching.timer_flushes = harness.ctrl->timer_flushes();
  out.batching.budget_flushes = harness.ctrl->budget_flushes();
  out.batching.flush_timers_cancelled = harness.ctrl->flush_timers_cancelled();
  out.batching.max_hold = harness.ctrl->max_hold();
  out.sharding.shards = harness.ctrl->shard_count();
  out.sharding.exec = controller_config.exec;
  out.sharding.threads = pool_threads;
  out.sharding.cross_shard_updates = harness.ctrl->cross_shard_updates();
  out.sharding.rounds_synced = harness.ctrl->rounds_synced();
  out.sharding.sync_overhead = harness.ctrl->sync_overhead();
  out.sharding.parallel_epochs = harness.sim.parallel_epochs();
  out.sharding.horizon_stalls = harness.sim.horizon_stalls();
  out.sharding.speculative_releases = harness.ctrl->speculative_releases();
  out.sharding.steals = harness.sim.steals();
  out.sharding.overflow_posts = harness.sim.overflow_posts();
  out.sharding.events_per_shard = harness.sim.events_per_shard();
  out.sharding.partition_cut_weight = harness.partition.cut_weight(affinity);
  out.sharding.wall_ms = wall_ms;
  out.faults = std::move(fault_stats);
  out.faults.timeouts = harness.ctrl->timeouts();
  out.faults.resyncs = harness.ctrl->resyncs();
  out.faults.resync_frames = harness.ctrl->resync_frames();
  out.faults.rollbacks = harness.ctrl->rollbacks();
  out.faults.retries = harness.ctrl->retries();
  out.faults.resubmissions = harness.ctrl->resubmissions();
  for (const auto& duplex : harness.channels)
    out.faults.frames_lost += duplex->to_switch.frames_dropped() +
                              duplex->to_controller.frames_dropped();
  for (const switchsim::SimSwitch* sw : harness.switches)
    if (sw != nullptr) out.faults.frames_lost += sw->frames_dropped();
  out.state_digest = final_state_digest(harness);
  out.initial_digest = initial_digest;
  out.aggregate = monitors.aggregate();

  sim::SimTime first_start = std::numeric_limits<sim::SimTime>::max();
  sim::SimTime last_finish = 0;
  out.updates.reserve(requests.size());
  for (const FlowId key : key_flows) {
    const auto it = by_flow.find(key);
    if (it == by_flow.end())
      return make_error(Errc::kFailedPrecondition,
                        "no completed update for request");
    out.updates.push_back(*it->second);
    first_start = std::min(first_start, it->second->started);
    last_finish = std::max(last_finish, it->second->finished);
  }
  out.makespan = last_finish - first_start;

  out.traffic.resize(instances.size());
  out.timelines.resize(instances.size());
  out.packets_injected.assign(instances.size(), 0);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const dataplane::ConsistencyMonitor* monitor =
        monitors.find(config.flow + i);
    TSU_ASSERT(monitor != nullptr);
    out.traffic[i] = monitor->report();
    out.timelines[i] = monitor->timeline();
    out.timeline_bucket = monitor->bucket_width();
    if (config.with_traffic && i < sources.size() && sources[i])
      out.packets_injected[i] = sources[i]->injected();
  }
  return out;
}

// One request per policy, flows numbered config.flow + i.
std::vector<EngineRequest> per_policy_requests(
    const std::vector<const update::Instance*>& instances,
    const std::vector<const update::Schedule*>& schedules,
    const ExecutorConfig& config) {
  std::vector<EngineRequest> requests;
  requests.reserve(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    EngineRequest r;
    r.request = controller::request_from_schedule(
        *instances[i], *schedules[i], config.flow + i, config.priority,
        config.interval);
    r.policies = {i};
    requests.push_back(std::move(r));
  }
  return requests;
}

// Per-policy ExecutionResults assembled from an engine run where request i
// covers exactly policy i.
std::vector<ExecutionResult> per_policy_results(const EngineOutput& out) {
  std::vector<ExecutionResult> flows(out.updates.size());
  for (std::size_t i = 0; i < out.updates.size(); ++i) {
    ExecutionResult& result = flows[i];
    result.update = out.updates[i];
    result.traffic = out.traffic[i];
    result.timeline = out.timelines[i];
    result.timeline_bucket = out.timeline_bucket;
    result.frames_sent = out.frames_sent;
    result.control_bytes = out.control_bytes;
    result.packets_injected = out.packets_injected[i];
  }
  return flows;
}

}  // namespace

Result<ExecutionResult> execute(const update::Instance& inst,
                                const update::Schedule& schedule,
                                const ExecutorConfig& config) {
  std::vector<const update::Instance*> instances{&inst};
  std::vector<const update::Schedule*> schedules{&schedule};
  Result<std::vector<ExecutionResult>> results =
      execute_queue(instances, schedules, config);
  if (!results.ok()) return results.error();
  TSU_ASSERT(results.value().size() == 1);
  return std::move(results).value()[0];
}

Result<std::vector<ExecutionResult>> execute_queue(
    const std::vector<const update::Instance*>& instances,
    const std::vector<const update::Schedule*>& schedules,
    const ExecutorConfig& config) {
  if (instances.size() != schedules.size() || instances.empty())
    return make_error(Errc::kInvalidArgument,
                      "need matching, non-empty instance/schedule lists");
  // The paper's strictly serializing message queue.
  controller::ControllerConfig serialized = config.controller;
  serialized.max_in_flight = 1;
  Result<EngineOutput> out =
      run_engine(instances, per_policy_requests(instances, schedules, config),
                 config, serialized);
  if (!out.ok()) return out.error();
  return per_policy_results(out.value());
}

Result<MultiFlowExecutionResult> execute_multiflow(
    const std::vector<const update::Instance*>& instances,
    const std::vector<const update::Schedule*>& schedules,
    const ExecutorConfig& config) {
  if (instances.size() != schedules.size() || instances.empty())
    return make_error(Errc::kInvalidArgument,
                      "need matching, non-empty instance/schedule lists");
  Result<EngineOutput> out =
      run_engine(instances, per_policy_requests(instances, schedules, config),
                 config, config.controller);
  if (!out.ok()) return out.error();
  MultiFlowExecutionResult result;
  result.flows = per_policy_results(out.value());
  result.aggregate = out.value().aggregate;
  result.frames_sent = out.value().frames_sent;
  result.control_bytes = out.value().control_bytes;
  result.messages_sent = out.value().messages_sent;
  result.max_in_flight_observed = out.value().max_in_flight_observed;
  result.conflict_edges = out.value().conflict_edges;
  result.blocked_submissions = out.value().blocked_submissions;
  result.batching = out.value().batching;
  result.sharding = out.value().sharding;
  result.faults = out.value().faults;
  result.final_state_digest = out.value().state_digest;
  result.initial_state_digest = out.value().initial_digest;
  result.makespan = out.value().makespan;
  return result;
}

Result<MergedExecutionResult> execute_merged(
    const std::vector<const update::Instance*>& instances,
    const std::vector<const update::Schedule*>& schedules,
    const ExecutorConfig& config) {
  if (instances.size() != schedules.size() || instances.empty())
    return make_error(Errc::kInvalidArgument,
                      "need matching, non-empty instance/schedule lists");
  std::vector<std::size_t> all(instances.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  Result<MixedExecutionResult> mixed =
      execute_mixed(instances, schedules, {all}, config);
  if (!mixed.ok()) return mixed.error();

  MergedExecutionResult result;
  result.update = std::move(mixed.value().updates.front());
  result.traffic = std::move(mixed.value().traffic);
  result.frames_sent = mixed.value().frames_sent;
  return result;
}

Result<MixedExecutionResult> execute_mixed(
    const std::vector<const update::Instance*>& instances,
    const std::vector<const update::Schedule*>& schedules,
    const std::vector<std::vector<std::size_t>>& groups,
    const ExecutorConfig& config) {
  if (instances.size() != schedules.size() || instances.empty())
    return make_error(Errc::kInvalidArgument,
                      "need matching, non-empty instance/schedule lists");
  if (groups.empty())
    return make_error(Errc::kInvalidArgument, "need at least one group");

  // Groups must partition the policy indexes.
  std::vector<bool> seen(instances.size(), false);
  for (const std::vector<std::size_t>& group : groups) {
    if (group.empty())
      return make_error(Errc::kInvalidArgument, "empty group");
    for (const std::size_t i : group) {
      if (i >= instances.size() || seen[i])
        return make_error(Errc::kInvalidArgument,
                          "groups must partition the policy indexes");
      seen[i] = true;
    }
  }
  for (const bool covered : seen)
    if (!covered)
      return make_error(Errc::kInvalidArgument,
                        "groups must cover every policy");

  std::vector<EngineRequest> requests;
  requests.reserve(groups.size());
  for (const std::vector<std::size_t>& group : groups) {
    EngineRequest r;
    r.policies = group;
    if (group.size() == 1) {
      const std::size_t i = group.front();
      r.request = controller::request_from_schedule(
          *instances[i], *schedules[i], config.flow + i, config.priority,
          config.interval);
    } else {
      std::vector<const update::Instance*> members;
      std::vector<const update::Schedule*> member_schedules;
      std::vector<FlowId> flows;
      for (const std::size_t i : group) {
        members.push_back(instances[i]);
        member_schedules.push_back(schedules[i]);
        flows.push_back(config.flow + i);
      }
      Result<update::MergedSchedule> merged =
          update::merge_policies(members, member_schedules);
      if (!merged.ok()) return merged.error();
      r.request = controller::request_from_merged(
          members, member_schedules, merged.value(), flows, config.priority,
          config.interval);
    }
    requests.push_back(std::move(r));
  }

  Result<EngineOutput> out =
      run_engine(instances, std::move(requests), config, config.controller);
  if (!out.ok()) return out.error();

  MixedExecutionResult result;
  result.updates = std::move(out.value().updates);
  result.traffic = std::move(out.value().traffic);
  result.aggregate = out.value().aggregate;
  result.frames_sent = out.value().frames_sent;
  result.max_in_flight_observed = out.value().max_in_flight_observed;
  result.conflict_edges = out.value().conflict_edges;
  result.blocked_submissions = out.value().blocked_submissions;
  result.batching = out.value().batching;
  result.sharding = out.value().sharding;
  result.faults = out.value().faults;
  result.final_state_digest = out.value().state_digest;
  result.initial_state_digest = out.value().initial_digest;
  result.makespan = out.value().makespan;
  return result;
}

Result<ServiceResult> execute_service(const ServiceConfig& config) {
  ExecutorConfig exec = config.exec;
  // Consecutive updates of one template share a rule footprint and MUST
  // serialize, or a later submission races the earlier one's rounds and
  // leaves the data plane inconsistent (the reverse direction assumes the
  // forward update's end state). Blind admission cannot give that
  // guarantee, so service mode upgrades it to the conflict DAG.
  if (exec.controller.admission == controller::AdmissionPolicy::kBlind)
    exec.controller.admission = controller::AdmissionPolicy::kConflictAware;
  // CI kill switch: TSU_PLAN_CACHE=off forces every service run onto the
  // compile-per-submission path, so the sanitizer jobs can sweep the whole
  // service/soak suite with the cache inert and prove the transparent-
  // optimization claim under ASan without duplicating the tests.
  if (const char* env = std::getenv("TSU_PLAN_CACHE");
      env != nullptr && std::string_view(env) == "off")
    exec.controller.plan_cache = false;
  if (config.flows == 0)
    return make_error(Errc::kInvalidArgument, "need at least one template");
  if (config.classes.empty() || config.classes.size() > 256)
    return make_error(Errc::kInvalidArgument,
                      "priority class count must be in [1, 256]");
  if (config.max_pending == 0)
    return make_error(Errc::kInvalidArgument,
                      "max_pending must be at least 1");
  const bool bounded_trace = !config.trace.empty() && !config.trace_cycle;
  if (config.horizon == 0 && config.target_completions == 0 && !bounded_trace)
    return make_error(Errc::kInvalidArgument,
                      "service needs a horizon, a completion target, or a "
                      "non-cycling trace - arrivals would never stop");
  if (config.trace.empty() && !(config.arrival_rate_per_sec > 0))
    return make_error(Errc::kInvalidArgument,
                      "arrival rate must be positive");
  if (!exec.faults.empty())
    return make_error(Errc::kInvalidArgument,
                      "fault injection is not supported in service mode");
  if (exec.controller.shards > proto::kMaxXidShards)
    return make_error(Errc::kOutOfRange, "shards must be in [1, 256]");
  double total_weight = 0;
  for (const ServiceClassConfig& cls : config.classes)
    total_weight += std::max(0.0, cls.weight);
  if (!(total_weight > 0))
    return make_error(Errc::kInvalidArgument,
                      "class weights must sum to a positive value");

  topo::ArrivalProcess arrivals =
      !config.trace.empty()
          ? topo::ArrivalProcess::trace(config.trace, config.trace_cycle)
          : topo::ArrivalProcess::poisson(config.arrival_rate_per_sec);

  // Template pool: forward (old -> new) schedules, plus the reverse
  // direction planned once up front when alternation is on. Submission
  // flips per template, and same-template requests share a rule footprint,
  // so admission serializes them in arrival order - the data plane always
  // transitions from the state the submitted direction assumes.
  Result<topo::PlannedPoolWorkload> pool_result =
      topo::planned_pool_workload(config.flows, config.pool_switches);
  if (!pool_result.ok()) return pool_result.error();
  topo::PlannedPoolWorkload pool = std::move(pool_result).value();

  std::vector<update::Instance> rev_instances;
  std::vector<update::Schedule> rev_schedules;
  if (config.alternate_directions) {
    rev_instances.reserve(pool.instances.size());
    rev_schedules.reserve(pool.instances.size());
    for (const update::Instance& inst : pool.instances) {
      Result<update::Instance> rev = update::Instance::make(
          inst.new_path(), inst.old_path(), inst.waypoint());
      if (!rev.ok()) return rev.error();
      Result<update::Schedule> sched = update::plan_peacock(rev.value());
      if (!sched.ok()) return sched.error();
      rev_instances.push_back(std::move(rev).value());
      rev_schedules.push_back(std::move(sched).value());
    }
  }

  std::size_t node_count = 0;
  for (const update::Instance* inst : pool.instance_ptrs)
    node_count = std::max(node_count, inst->node_count());
  const std::size_t shard_count =
      exec.controller.shards == 0 ? 1 : exec.controller.shards;
  const std::vector<topo::SwitchAffinity> affinity =
      affinity_edges(pool.instance_ptrs);
  topo::SwitchPartition partition =
      exec.controller.partition == topo::PartitionScheme::kGreedyCut
          ? topo::make_greedy_cut_partition(shard_count, node_count, affinity)
          : topo::SwitchPartition(shard_count, exec.controller.partition,
                                  node_count);

  Harness harness(exec, exec.controller, std::move(partition));
  for (const update::Instance* inst : pool.instance_ptrs)
    add_instance_switches(harness, *inst, exec);
  for (std::size_t i = 0; i < pool.instances.size(); ++i)
    harness.install_initial(pool.instances[i], exec.flow + i, exec.priority);

  // bucket_width 0: aggregate outcome counts only. An open-loop horizon is
  // unbounded, so the per-bucket timeline must stay disabled.
  dataplane::MultiFlowMonitor monitors(0);
  std::vector<std::unique_ptr<dataplane::TrafficSource>> sources =
      make_sources(harness, monitors, pool.instance_ptrs, exec);

  // Forked AFTER every per-switch/per-source fork so the control-plane
  // streams match a run with different service parameters.
  Rng service_rng = harness.rng.fork();

  const std::size_t class_count = config.classes.size();
  struct PendingRequest {
    std::size_t tmpl = 0;
    sim::SimTime arrived = 0;
  };
  // Per-class FIFO as a flat ring rather than std::deque: libstdc++'s deque
  // allocates a fresh ~512-byte chunk every ~32 pushes even at constant
  // depth, which would show up as steady-state allocations on the
  // submission path. Capacity starts at min(max_pending, 1024) - since
  // per-class depth is bounded by the shared max_pending admission check,
  // the default configuration never grows after construction.
  struct PendingRing {
    std::vector<PendingRequest> slots;
    std::size_t head = 0;
    std::size_t count = 0;

    bool empty() const noexcept { return count == 0; }
    const PendingRequest& front() const noexcept { return slots[head]; }
    void pop_front() noexcept {
      head = head + 1 == slots.size() ? 0 : head + 1;
      --count;
    }
    void push_back(const PendingRequest& r) {
      if (count == slots.size()) grow();
      std::size_t tail = head + count;
      if (tail >= slots.size()) tail -= slots.size();
      slots[tail] = r;
      ++count;
    }
    void grow() {
      std::vector<PendingRequest> next(std::max<std::size_t>(
          std::size_t{8}, slots.size() * 2));
      for (std::size_t i = 0; i < count; ++i)
        next[i] = slots[(head + i) % (slots.empty() ? 1 : slots.size())];
      slots = std::move(next);
      head = 0;
    }
  };
  std::vector<PendingRing> pending(class_count);
  for (PendingRing& ring : pending)
    ring.slots.resize(std::min<std::size_t>(config.max_pending, 1024));
  std::size_t pending_total = 0;
  std::vector<double> tokens(class_count);
  std::vector<sim::SimTime> refilled(class_count, 0);
  for (std::size_t c = 0; c < class_count; ++c)
    tokens[c] = std::max(1.0, config.classes[c].burst);
  std::vector<std::uint64_t> flip(config.flows, 0);

  // Compiled-plan cache (controller/plan_cache.hpp). Keys are derived once
  // per (template, direction) from the instance's identity digest - the
  // forward and reverse instances of one template digest differently (the
  // paths swap), but mix in a direction tag anyway so the key's meaning
  // never rests on that accident. Submissions below consult the cache with
  // the coordinator's current resync generation: any fault-driven shadow
  // rewrite bumps it and stale pre-encoded frames are recompiled, never
  // served.
  const bool plan_cache_on = exec.controller.plan_cache;
  controller::PlanCache plan_cache;
  std::vector<std::uint64_t> fwd_keys;
  std::vector<std::uint64_t> rev_keys;
  if (plan_cache_on) {
    constexpr std::uint64_t kReverseTag = 0x9e3779b97f4a7c15ULL;
    fwd_keys.reserve(pool.instances.size());
    for (const update::Instance& inst : pool.instances)
      fwd_keys.push_back(inst.identity_digest());
    rev_keys.reserve(rev_instances.size());
    for (const update::Instance& inst : rev_instances)
      rev_keys.push_back(inst.identity_digest() ^ kReverseTag);
  }

  ServiceStats stats;
  stats.by_class.resize(class_count);
  sim::SimTime last_completion = 0;
  bool arrivals_done = false;
  bool pump_timer = false;
  bool pumping = false;

  std::size_t depth_limit = config.submit_depth;
  if (depth_limit == 0) {
    const std::size_t mif =
        exec.controller.max_in_flight == 0 ? 1 : exec.controller.max_in_flight;
    depth_limit = mif > (std::size_t{1} << 20)
                      ? (std::size_t{1} << 20)
                      : 2 * mif * shard_count;
  }

  const auto controller_depth = [&]() {
    return harness.ctrl->queued() + harness.ctrl->in_flight();
  };

  const auto pick_class = [&]() -> std::uint8_t {
    if (class_count == 1) return 0;
    double r = service_rng.uniform01() * total_weight;
    for (std::size_t c = 0; c < class_count; ++c) {
      r -= std::max(0.0, config.classes[c].weight);
      if (r < 0) return static_cast<std::uint8_t>(c);
    }
    return static_cast<std::uint8_t>(class_count - 1);
  };

  const auto submit_one = [&](std::size_t cls) {
    const PendingRequest p = pending[cls].front();
    pending[cls].pop_front();
    --pending_total;
    const bool reverse = config.alternate_directions && (flip[p.tmpl] & 1);
    ++flip[p.tmpl];
    const update::Instance& inst =
        reverse ? rev_instances[p.tmpl] : pool.instances[p.tmpl];
    const update::Schedule& sched =
        reverse ? rev_schedules[p.tmpl] : pool.schedules[p.tmpl];
    if (plan_cache_on) {
      // Warm path: reuse the compiled plan - no request materialization, no
      // re-encoding; the controller patches xids into the cached frames.
      // Cold path: build the CANONICAL request (exactly what the cache-off
      // branch below submits, before the per-submission class/enqueued
      // stamps) and compile it once.
      const std::uint64_t key =
          reverse ? rev_keys[p.tmpl] : fwd_keys[p.tmpl];
      const std::uint64_t generation = harness.ctrl->resync_generation();
      std::shared_ptr<const controller::CompiledPlan> plan =
          plan_cache.lookup(key, generation);
      if (plan == nullptr) {
        controller::UpdateRequest req = controller::request_from_schedule(
            inst, sched, static_cast<FlowId>(exec.flow + p.tmpl),
            exec.priority, exec.interval);
        plan = controller::compile_plan(std::move(req), generation);
        plan_cache.store(key, plan);
      }
      harness.ctrl->submit_plan(std::move(plan),
                                static_cast<std::uint8_t>(cls), p.arrived);
    } else {
      controller::UpdateRequest req = controller::request_from_schedule(
          inst, sched, static_cast<FlowId>(exec.flow + p.tmpl), exec.priority,
          exec.interval);
      req.priority_class = static_cast<std::uint8_t>(cls);
      req.enqueued = p.arrived;
      harness.ctrl->submit(std::move(req));
    }
    ++stats.submitted;
    ++stats.by_class[cls].submitted;
  };

  // Releases pending requests into the controller: strict priority (class
  // 0 first, FIFO within a class) up to depth_limit, honouring each
  // class's token bucket. A throttled class defers its head-of-line
  // request and the scan moves on, so rate-limited high-priority traffic
  // never starves unlimited lower classes.
  std::function<void()> pump_fn;
  const auto schedule_pump = [&](sim::Duration delay) {
    if (pump_timer) return;
    pump_timer = true;
    harness.sim.schedule_on(0, delay, [&]() {
      pump_timer = false;
      pump_fn();
    });
  };
  pump_fn = [&]() {
    if (pumping) return;  // submit can complete and re-enter synchronously
    pumping = true;
    const sim::SimTime now = harness.sim.now();
    bool want_timer = false;
    sim::Duration timer_delay = 0;
    bool progress = true;
    while (progress && pending_total > 0 && controller_depth() < depth_limit) {
      progress = false;
      for (std::size_t c = 0; c < class_count; ++c) {
        if (pending[c].empty()) continue;
        const ServiceClassConfig& cls = config.classes[c];
        if (cls.rate_limit_per_sec > 0) {
          const double cap = std::max(1.0, cls.burst);
          tokens[c] = std::min(
              cap, tokens[c] + static_cast<double>(now - refilled[c]) *
                                   cls.rate_limit_per_sec / 1e9);
          refilled[c] = now;
          if (tokens[c] < 1) {
            ++stats.throttled;
            ++stats.by_class[c].throttled;
            const sim::Duration wait =
                static_cast<sim::Duration>((1 - tokens[c]) * 1e9 /
                                           cls.rate_limit_per_sec) +
                1;
            if (!want_timer || wait < timer_delay) {
              want_timer = true;
              timer_delay = wait;
            }
            continue;
          }
          tokens[c] -= 1;
        }
        submit_one(c);
        progress = true;
        break;  // restart from class 0: strict priority
      }
    }
    stats.peak_controller_depth =
        std::max(stats.peak_controller_depth, controller_depth());
    if (want_timer && pending_total > 0) schedule_pump(timer_delay);
    pumping = false;
  };

  // Once arrivals have stopped and every accepted request completed, give
  // in-flight packets a drain window; with traffic off the event queue
  // simply empties.
  const auto maybe_finish = [&]() {
    if (!arrivals_done || pending_total != 0 ||
        stats.submitted != stats.completed)
      return;
    for (auto& source : sources)
      if (source) source->set_stop(harness.sim.now() + exec.drain);
  };
  const auto finish_arrivals = [&]() {
    arrivals_done = true;
    maybe_finish();
  };

  std::function<void()> arrival_fn;
  const auto schedule_next_arrival = [&]() {
    if (config.target_completions != 0 &&
        stats.accepted >= config.target_completions) {
      finish_arrivals();
      return;
    }
    if (arrivals.exhausted()) {
      finish_arrivals();
      return;
    }
    const sim::Duration gap = arrivals.next_gap(service_rng);
    if (config.horizon != 0 && harness.sim.now() + gap > config.horizon) {
      finish_arrivals();
      return;
    }
    harness.sim.schedule_on(0, gap, [&]() { arrival_fn(); });
  };
  arrival_fn = [&]() {
    const std::uint8_t cls = pick_class();
    ++stats.arrivals;
    ++stats.by_class[cls].arrivals;
    if (pending_total >= config.max_pending) {
      // Load shedding: a full pending queue rejects, never buffers - the
      // bound that keeps overload memory flat.
      ++stats.rejected;
      ++stats.by_class[cls].rejected;
    } else {
      pending[cls].push_back(
          PendingRequest{service_rng.index(config.flows), harness.sim.now()});
      ++pending_total;
      ++stats.accepted;
      ++stats.by_class[cls].accepted;
      stats.peak_pending = std::max(stats.peak_pending, pending_total);
    }
    pump_fn();
    schedule_next_arrival();
  };

  harness.ctrl->set_on_update_done(
      [&](const controller::UpdateMetrics& metrics) {
        ++stats.completed;
        if (metrics.aborted) ++stats.aborted;
        if (metrics.priority_class < class_count)
          ++stats.by_class[metrics.priority_class].completed;
        last_completion = std::max(last_completion, metrics.finished);
        pump_fn();
        maybe_finish();
      });

  // Live snapshot feed: a bounded ring of the last snapshot_window
  // snapshots; the event stops rescheduling itself once the run is done,
  // so it never keeps the simulation alive.
  std::vector<ServiceSnapshot> snap_ring;
  std::size_t snap_next = 0;
  std::uint64_t snap_prev_completed = 0;
  std::function<void()> snapshot_fn;
  if (config.snapshot_interval > 0 && config.snapshot_window > 0) {
    snap_ring.reserve(config.snapshot_window);
    snapshot_fn = [&]() {
      ServiceSnapshot s;
      s.at = harness.sim.now();
      s.arrivals = stats.arrivals;
      s.accepted = stats.accepted;
      s.rejected = stats.rejected;
      s.submitted = stats.submitted;
      s.completed = stats.completed;
      s.pending = pending_total;
      s.controller_depth = controller_depth();
      s.steady_state_entries = harness.ctrl->steady_state_entries();
      s.plan_compiles = plan_cache.compiles();
      s.plan_hits = plan_cache.hits();
      s.plan_invalidations = plan_cache.invalidations();
      s.window_throughput_per_sec =
          static_cast<double>(stats.completed - snap_prev_completed) * 1e9 /
          static_cast<double>(config.snapshot_interval);
      snap_prev_completed = stats.completed;
      const controller::CompletionStats& cs =
          harness.ctrl->completions().stats();
      if (cs.count > 0) {
        s.p50_duration_ms = cs.duration_ns.quantile(0.5) / 1e6;
        s.p99_duration_ms = cs.duration_ns.quantile(0.99) / 1e6;
        s.p50_wait_ms = cs.wait_ns.quantile(0.5) / 1e6;
        s.p99_wait_ms = cs.wait_ns.quantile(0.99) / 1e6;
      }
      if (snap_ring.size() < config.snapshot_window) {
        snap_ring.push_back(s);
      } else {
        snap_ring[snap_next] = s;
        snap_next = (snap_next + 1) % config.snapshot_window;
      }
      if (config.on_snapshot) config.on_snapshot(s);
      if (!(arrivals_done && pending_total == 0 &&
            stats.submitted == stats.completed))
        harness.sim.schedule_on(0, config.snapshot_interval,
                                [&]() { snapshot_fn(); });
    };
    harness.sim.schedule_on(0, config.snapshot_interval,
                            [&]() { snapshot_fn(); });
  }

  if (config.tune) config.tune(*harness.ctrl);

  for (auto& source : sources)
    if (source) source->start();
  schedule_next_arrival();

  const bool parallel = exec.controller.exec == sim::ExecMode::kParallel;
  const std::size_t pool_threads =
      !parallel ? 1
      : exec.controller.threads != 0
          ? std::min(exec.controller.threads, harness.sim.shard_count())
          : std::min(harness.sim.shard_count(),
                     sim::ThreadPool::hardware_threads());
  const auto wall_start = std::chrono::steady_clock::now();
  if (parallel) {
    sim::ThreadPool thread_pool(pool_threads);
    harness.sim.run_parallel(thread_pool, cross_shard_lookahead(exec));
  } else {
    harness.sim.run();
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();

  if (!harness.ctrl->idle() || stats.submitted != stats.completed ||
      pending_total != 0)
    return make_error(Errc::kFailedPrecondition,
                      "service drained with work outstanding");

  ServiceResult result;
  const controller::CompletionLog& log = harness.ctrl->completions();
  result.completions = log.stats();
  if (!log.recent().empty()) {
    result.recent.reserve(log.recent().size());
    for (std::size_t i = log.recent().size(); i-- > 0;)
      result.recent.push_back(log.recent_back(i));  // oldest -> newest
  }
  result.traffic = monitors.aggregate();
  if (!snap_ring.empty()) {
    result.snapshots.reserve(snap_ring.size());
    for (std::size_t i = 0; i < snap_ring.size(); ++i)
      result.snapshots.push_back(
          snap_ring[(snap_next + i) % snap_ring.size()]);
  }
  result.steady_state_entries_final = harness.ctrl->steady_state_entries();
  result.final_state_digest = final_state_digest(harness);
  result.sim_duration = last_completion;
  result.wall_ms = wall_ms;
  result.frames_sent = harness.total_frames();
  for (std::size_t s = 0; s < harness.ctrl->shard_count(); ++s)
    result.retired_xids += harness.ctrl->shard(s).engine().retired_xids();
  stats.plan_compiles = plan_cache.compiles();
  stats.plan_hits = plan_cache.hits();
  stats.plan_invalidations = plan_cache.invalidations();
  result.stats = std::move(stats);
  return result;
}

}  // namespace tsu::core
