#include "tsu/core/experiment.hpp"

#include <sstream>

namespace tsu::core {

std::string ExperimentResult::summary_line() const {
  std::ostringstream out;
  out << to_string(algorithm) << ": rounds=" << schedule.round_count()
      << " check=" << (check.ok ? "OK" : "VIOLATED")
      << " update=" << execution.update_ms() << "ms traffic{"
      << execution.traffic.to_string() << "}";
  return out.str();
}

Result<ExperimentResult> run_experiment(const update::Instance& inst,
                                        Algorithm algorithm,
                                        const ExecutorConfig& exec_config,
                                        const PlannerOptions& plan_options) {
  PlannerOptions options = plan_options;
  options.verify = true;
  Result<PlanOutcome> outcome = plan(inst, algorithm, options);
  if (!outcome.ok()) return outcome.error();

  ExperimentResult result;
  result.algorithm = algorithm;
  result.schedule = std::move(outcome.value().schedule);
  result.check = std::move(*outcome.value().report);

  Result<ExecutionResult> execution =
      execute(inst, result.schedule, exec_config);
  if (!execution.ok()) return execution.error();
  result.execution = std::move(execution).value();
  return result;
}

Result<SeedSweep> sweep_seeds(const update::Instance& inst,
                              const update::Schedule& schedule,
                              ExecutorConfig exec_config,
                              const std::vector<std::uint64_t>& seeds) {
  SeedSweep sweep;
  for (const std::uint64_t seed : seeds) {
    exec_config.seed = seed;
    Result<ExecutionResult> execution = execute(inst, schedule, exec_config);
    if (!execution.ok()) return execution.error();
    const ExecutionResult& result = execution.value();

    sweep.update_ms.add(result.update_ms());
    sweep.update_ms_pct.add(result.update_ms());
    sweep.bypassed.add(static_cast<double>(result.traffic.bypassed));
    sweep.looped.add(static_cast<double>(result.traffic.looped));
    sweep.blackholed.add(static_cast<double>(result.traffic.blackholed +
                                             result.traffic.ttl_expired));
    sweep.delivered.add(static_cast<double>(result.traffic.delivered));
    ++sweep.runs;
    if (result.traffic.bypassed > 0) ++sweep.runs_with_bypass;
    if (result.traffic.looped > 0) ++sweep.runs_with_loop;
    if (result.traffic.blackholed + result.traffic.ttl_expired > 0)
      ++sweep.runs_with_drop;
  }
  return sweep;
}

}  // namespace tsu::core
