#include "tsu/core/planner.hpp"

namespace tsu::core {

const char* to_string(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kOneShot: return "oneshot";
    case Algorithm::kTwoPhase: return "twophase";
    case Algorithm::kWayUp: return "wayup";
    case Algorithm::kPeacock: return "peacock";
    case Algorithm::kSlfGreedy: return "slf-greedy";
    case Algorithm::kSecure: return "secure";
    case Algorithm::kOptimal: return "optimal";
  }
  return "?";
}

std::optional<Algorithm> algorithm_from_string(
    std::string_view name) noexcept {
  if (name == "oneshot") return Algorithm::kOneShot;
  if (name == "twophase") return Algorithm::kTwoPhase;
  if (name == "wayup") return Algorithm::kWayUp;
  if (name == "peacock") return Algorithm::kPeacock;
  if (name == "slf-greedy" || name == "slf") return Algorithm::kSlfGreedy;
  if (name == "secure") return Algorithm::kSecure;
  if (name == "optimal") return Algorithm::kOptimal;
  return std::nullopt;
}

std::uint32_t default_property(Algorithm algorithm,
                               bool has_waypoint) noexcept {
  switch (algorithm) {
    case Algorithm::kOneShot:
    case Algorithm::kTwoPhase:
      return has_waypoint ? update::kTransientlySecure
                          : update::kPeacockGuarantee;
    case Algorithm::kWayUp: return update::kWayUpGuarantee;
    case Algorithm::kPeacock: return update::kPeacockGuarantee;
    case Algorithm::kSlfGreedy: return update::kSlfGuarantee;
    case Algorithm::kSecure: return update::kTransientlySecure;
    case Algorithm::kOptimal: return update::kPeacockGuarantee;
  }
  return 0;
}

Result<PlanOutcome> plan(const update::Instance& inst, Algorithm algorithm,
                         const PlannerOptions& options) {
  Result<update::Schedule> schedule = [&]() -> Result<update::Schedule> {
    switch (algorithm) {
      case Algorithm::kOneShot:
        return update::plan_oneshot(inst, options.scheduler);
      case Algorithm::kTwoPhase:
        return update::plan_twophase(inst, options.scheduler);
      case Algorithm::kWayUp:
        return update::plan_wayup(inst, options.scheduler);
      case Algorithm::kPeacock:
        return update::plan_peacock(inst, options.peacock);
      case Algorithm::kSlfGreedy:
        return update::plan_slf_greedy(inst, options.scheduler);
      case Algorithm::kSecure:
        return update::plan_secure(inst, options.secure);
      case Algorithm::kOptimal:
        return update::plan_optimal(inst, options.optimal);
    }
    return make_error(Errc::kInvalidArgument, "unknown algorithm");
  }();
  if (!schedule.ok()) return schedule.error();

  PlanOutcome outcome;
  outcome.schedule = std::move(schedule).value();
  if (options.verify) {
    outcome.report = verify::check_schedule(
        inst, outcome.schedule,
        default_property(algorithm, inst.has_waypoint()), options.check);
  }
  return outcome;
}

}  // namespace tsu::core
