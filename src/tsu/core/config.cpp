#include "tsu/core/config.hpp"

namespace tsu::core {

namespace {

Result<double> number_field(const json::Object& obj, const char* key,
                            double minimum) {
  const json::Value* value = obj.find(key);
  if (value == nullptr)
    return make_error(Errc::kParseError,
                      std::string("missing field '") + key + "'");
  if (!value->is_number())
    return make_error(Errc::kParseError,
                      std::string("field '") + key + "' must be a number");
  const double v = value->as_double();
  if (v < minimum)
    return make_error(Errc::kOutOfRange,
                      std::string("field '") + key + "' below minimum");
  return v;
}

Result<double> optional_number(const json::Object& obj, const char* key,
                               double fallback, double minimum) {
  if (obj.find(key) == nullptr) return fallback;
  return number_field(obj, key, minimum);
}

sim::Duration ms(double value) { return sim::from_ms(value); }

}  // namespace

Result<sim::LatencyModel> latency_from_json(const json::Value& value) {
  if (!value.is_object())
    return make_error(Errc::kParseError, "latency model must be an object");
  const json::Object& obj = value.as_object();
  const json::Value* kind = obj.find("kind");
  if (kind == nullptr || !kind->is_string())
    return make_error(Errc::kParseError, "latency model needs string 'kind'");
  const std::string& name = kind->as_string();

  if (name == "constant") {
    Result<double> v = number_field(obj, "ms", 0);
    if (!v.ok()) return v.error();
    return sim::LatencyModel::constant(ms(v.value()));
  }
  if (name == "uniform") {
    Result<double> lo = number_field(obj, "lo_ms", 0);
    if (!lo.ok()) return lo.error();
    Result<double> hi = number_field(obj, "hi_ms", 0);
    if (!hi.ok()) return hi.error();
    if (hi.value() < lo.value())
      return make_error(Errc::kInvalidArgument, "uniform: hi_ms < lo_ms");
    return sim::LatencyModel::uniform(ms(lo.value()), ms(hi.value()));
  }
  if (name == "exponential") {
    Result<double> mean = number_field(obj, "mean_ms", 0);
    if (!mean.ok()) return mean.error();
    if (mean.value() <= 0)
      return make_error(Errc::kInvalidArgument,
                        "exponential: mean_ms must be > 0");
    return sim::LatencyModel::exponential(ms(mean.value()));
  }
  if (name == "lognormal") {
    Result<double> median = number_field(obj, "median_ms", 0);
    if (!median.ok()) return median.error();
    Result<double> sigma = number_field(obj, "sigma", 0);
    if (!sigma.ok()) return sigma.error();
    if (median.value() <= 0)
      return make_error(Errc::kInvalidArgument,
                        "lognormal: median_ms must be > 0");
    return sim::LatencyModel::lognormal(ms(median.value()), sigma.value());
  }
  if (name == "pareto") {
    Result<double> lo = number_field(obj, "lo_ms", 0);
    if (!lo.ok()) return lo.error();
    Result<double> hi = number_field(obj, "hi_ms", 0);
    if (!hi.ok()) return hi.error();
    Result<double> alpha = number_field(obj, "alpha", 0);
    if (!alpha.ok()) return alpha.error();
    if (lo.value() <= 0 || hi.value() <= lo.value() || alpha.value() <= 0)
      return make_error(Errc::kInvalidArgument, "pareto: bad parameters");
    return sim::LatencyModel::pareto(ms(lo.value()), ms(hi.value()),
                                     alpha.value());
  }
  return make_error(Errc::kParseError,
                    "unknown latency kind '" + name + "'");
}

Result<ExecutorConfig> config_from_json(std::string_view text) {
  Result<json::Value> doc = json::parse(text);
  if (!doc.ok()) return doc.error();
  return config_from_json(doc.value());
}

Result<ExecutorConfig> config_from_json(const json::Value& value) {
  if (!value.is_object())
    return make_error(Errc::kParseError, "config must be an object");
  ExecutorConfig config;
  bool saw_batch_mode = false;

  for (const auto& [key, field] : value.as_object()) {
    if (key == "seed") {
      if (!field.is_number() || field.as_int() < 0)
        return make_error(Errc::kParseError, "'seed' must be >= 0");
      config.seed = static_cast<std::uint64_t>(field.as_int());
    } else if (key == "channel") {
      if (!field.is_object())
        return make_error(Errc::kParseError, "'channel' must be an object");
      const json::Object& chan = field.as_object();
      for (const auto& [ckey, cval] : chan) {
        if (ckey == "latency") {
          Result<sim::LatencyModel> model = latency_from_json(cval);
          if (!model.ok()) return model.error();
          config.channel.latency = model.value();
        } else if (ckey == "loss") {
          if (!cval.is_number() || cval.as_double() < 0 ||
              cval.as_double() > 1)
            return make_error(Errc::kOutOfRange, "'loss' must be in [0,1]");
          config.channel.loss_probability = cval.as_double();
        } else if (ckey == "retransmit_timeout_ms") {
          Result<double> v =
              number_field(chan, "retransmit_timeout_ms", 0);
          if (!v.ok()) return v.error();
          config.channel.retransmit_timeout = ms(v.value());
        } else {
          return make_error(Errc::kParseError,
                            "unknown channel field '" + ckey + "'");
        }
      }
    } else if (key == "switch") {
      if (!field.is_object())
        return make_error(Errc::kParseError, "'switch' must be an object");
      const json::Object& sw = field.as_object();
      for (const auto& [skey, sval] : sw) {
        if (skey == "install") {
          Result<sim::LatencyModel> model = latency_from_json(sval);
          if (!model.ok()) return model.error();
          config.switch_config.install_latency = model.value();
        } else if (skey == "barrier_us") {
          Result<double> v = number_field(sw, "barrier_us", 0);
          if (!v.ok()) return v.error();
          config.switch_config.barrier_processing =
              static_cast<sim::Duration>(v.value() * 1e3);
        } else if (skey == "processing_us") {
          Result<double> v = number_field(sw, "processing_us", 0);
          if (!v.ok()) return v.error();
          config.switch_config.message_processing =
              static_cast<sim::Duration>(v.value() * 1e3);
        } else if (skey == "batch_replies") {
          if (!sval.is_bool())
            return make_error(Errc::kParseError,
                              "'batch_replies' must be a bool");
          config.switch_config.batch_replies = sval.as_bool();
        } else {
          return make_error(Errc::kParseError,
                            "unknown switch field '" + skey + "'");
        }
      }
    } else if (key == "use_barriers") {
      if (!field.is_bool())
        return make_error(Errc::kParseError, "'use_barriers' must be a bool");
      config.controller.use_barriers = field.as_bool();
    } else if (key == "max_in_flight") {
      if (!field.is_number() || field.as_int() < 1)
        return make_error(Errc::kOutOfRange, "'max_in_flight' must be >= 1");
      config.controller.max_in_flight =
          static_cast<std::size_t>(field.as_int());
    } else if (key == "batch_frames") {
      if (!field.is_bool())
        return make_error(Errc::kParseError, "'batch_frames' must be a bool");
      config.controller.batch_frames = field.as_bool();
    } else if (key == "batch_mode") {
      if (!field.is_string())
        return make_error(Errc::kParseError, "'batch_mode' must be a string");
      const std::optional<controller::BatchMode> mode =
          controller::batch_mode_from_string(field.as_string());
      if (!mode.has_value())
        return make_error(Errc::kParseError,
                          "unknown batch mode '" + field.as_string() +
                              "' (off | instant | window | adaptive)");
      config.controller.batch_mode = *mode;
      saw_batch_mode = true;
    } else if (key == "batch_window_ms") {
      if (!field.is_number() || field.as_double() < 0)
        return make_error(Errc::kOutOfRange, "'batch_window_ms' must be >= 0");
      config.controller.batch_window = ms(field.as_double());
    } else if (key == "batch_bytes") {
      if (!field.is_number() || field.as_int() < 1)
        return make_error(Errc::kOutOfRange, "'batch_bytes' must be >= 1");
      config.controller.batch_bytes =
          static_cast<std::size_t>(field.as_int());
    } else if (key == "admission") {
      if (!field.is_string())
        return make_error(Errc::kParseError, "'admission' must be a string");
      const std::optional<controller::AdmissionPolicy> policy =
          controller::admission_policy_from_string(field.as_string());
      if (!policy.has_value())
        return make_error(Errc::kParseError,
                          "unknown admission policy '" + field.as_string() +
                              "' (blind | conflict_aware | serialize)");
      config.controller.admission = *policy;
    } else if (key == "admission_release") {
      if (!field.is_string())
        return make_error(Errc::kParseError,
                          "'admission_release' must be a string");
      const std::optional<controller::AdmissionRelease> release =
          controller::admission_release_from_string(field.as_string());
      if (!release.has_value())
        return make_error(Errc::kParseError,
                          "unknown admission release '" + field.as_string() +
                              "' (request | round)");
      config.controller.admission_release = *release;
    } else if (key == "plan_cache") {
      if (!field.is_string() ||
          (field.as_string() != "on" && field.as_string() != "off"))
        return make_error(Errc::kParseError,
                          "'plan_cache' must be \"on\" or \"off\"");
      config.controller.plan_cache = field.as_string() == "on";
    } else if (key == "shards") {
      if (!field.is_number() || field.as_int() < 1 ||
          field.as_int() >
              static_cast<std::int64_t>(proto::kMaxXidShards))
        return make_error(Errc::kOutOfRange, "'shards' must be in [1, 256]");
      config.controller.shards = static_cast<std::size_t>(field.as_int());
    } else if (key == "partition") {
      if (!field.is_string())
        return make_error(Errc::kParseError, "'partition' must be a string");
      const std::optional<topo::PartitionScheme> scheme =
          topo::partition_scheme_from_string(field.as_string());
      if (!scheme.has_value())
        return make_error(Errc::kParseError,
                          "unknown partition scheme '" + field.as_string() +
                              "' (hash | block | greedy_cut)");
      config.controller.partition = *scheme;
    } else if (key == "exec") {
      if (!field.is_string())
        return make_error(Errc::kParseError, "'exec' must be a string");
      const std::optional<sim::ExecMode> mode =
          sim::exec_mode_from_string(field.as_string());
      if (!mode.has_value())
        return make_error(Errc::kParseError,
                          "unknown exec mode '" + field.as_string() +
                              "' (sequential | parallel)");
      config.controller.exec = *mode;
    } else if (key == "threads") {
      if (!field.is_number() || field.as_int() < 0)
        return make_error(Errc::kOutOfRange, "'threads' must be >= 0");
      config.controller.threads = static_cast<std::size_t>(field.as_int());
    } else if (key == "speculate") {
      if (!field.is_bool())
        return make_error(Errc::kParseError, "'speculate' must be a bool");
      config.controller.speculate = field.as_bool();
    } else if (key == "steal") {
      if (!field.is_bool())
        return make_error(Errc::kParseError, "'steal' must be a bool");
      config.controller.steal = field.as_bool();
    } else if (key == "flow") {
      if (!field.is_number() || field.as_int() < 0)
        return make_error(Errc::kParseError, "'flow' must be >= 0");
      config.flow = static_cast<FlowId>(field.as_int());
    } else if (key == "priority") {
      if (!field.is_number() || field.as_int() < 0 ||
          field.as_int() > 0xffff)
        return make_error(Errc::kOutOfRange, "'priority' out of range");
      config.priority = static_cast<std::uint16_t>(field.as_int());
    } else if (key == "interval_ms") {
      if (!field.is_number() || field.as_double() < 0)
        return make_error(Errc::kOutOfRange, "'interval_ms' must be >= 0");
      config.interval = ms(field.as_double());
    } else if (key == "faults") {
      Result<sim::FaultSchedule> schedule = sim::FaultSchedule::from_json(field);
      if (!schedule.ok()) return schedule.error();
      config.faults = std::move(schedule.value());
    } else if (key == "liveness_timeout_ms") {
      if (!field.is_number() || field.as_double() < 0)
        return make_error(Errc::kOutOfRange,
                          "'liveness_timeout_ms' must be >= 0");
      config.controller.liveness_timeout = ms(field.as_double());
    } else if (key == "failure_response") {
      if (!field.is_string())
        return make_error(Errc::kParseError,
                          "'failure_response' must be a string");
      const std::optional<controller::FailureResponse> response =
          controller::failure_response_from_string(field.as_string());
      if (!response.has_value())
        return make_error(Errc::kParseError,
                          "unknown failure response '" + field.as_string() +
                              "' (wait | rollback)");
      config.controller.failure_response = *response;
    } else if (key == "retry_backoff_ms") {
      if (!field.is_number() || field.as_double() < 0)
        return make_error(Errc::kOutOfRange, "'retry_backoff_ms' must be >= 0");
      config.controller.retry_backoff = ms(field.as_double());
    } else if (key == "resubmit") {
      if (!field.is_bool())
        return make_error(Errc::kParseError, "'resubmit' must be a bool");
      config.controller.resubmit_after_rollback = field.as_bool();
    } else if (key == "traffic") {
      if (!field.is_object())
        return make_error(Errc::kParseError, "'traffic' must be an object");
      const json::Object& traffic = field.as_object();
      for (const auto& [tkey, tval] : traffic) {
        if (tkey == "enabled") {
          if (!tval.is_bool())
            return make_error(Errc::kParseError, "'enabled' must be a bool");
          config.with_traffic = tval.as_bool();
        } else if (tkey == "interarrival") {
          Result<sim::LatencyModel> model = latency_from_json(tval);
          if (!model.ok()) return model.error();
          config.traffic_interarrival = model.value();
        } else if (tkey == "link") {
          Result<sim::LatencyModel> model = latency_from_json(tval);
          if (!model.ok()) return model.error();
          config.link_latency = model.value();
        } else if (tkey == "ttl") {
          if (!tval.is_number() || tval.as_int() < 1 ||
              tval.as_int() > 1024)
            return make_error(Errc::kOutOfRange, "'ttl' out of range");
          config.ttl = static_cast<int>(tval.as_int());
        } else if (tkey == "warmup_ms") {
          Result<double> v = optional_number(traffic, "warmup_ms", 5, 0);
          if (!v.ok()) return v.error();
          config.warmup = ms(v.value());
        } else if (tkey == "drain_ms") {
          Result<double> v = optional_number(traffic, "drain_ms", 20, 0);
          if (!v.ok()) return v.error();
          config.drain = ms(v.value());
        } else {
          return make_error(Errc::kParseError,
                            "unknown traffic field '" + tkey + "'");
        }
      }
    } else if (key == "service") {
      // The open-loop block belongs to the service document; rejecting it
      // here with a pointer beats the generic unknown-key error.
      return make_error(Errc::kParseError,
                        "'service' requires the service entry point "
                        "(service_config_from_json)");
    } else {
      return make_error(Errc::kParseError,
                        "unknown config field '" + key + "'");
    }
  }
  // An explicit batch_mode retires the legacy alias, whatever the key
  // order: "batch_mode": "off" really means off even next to
  // "batch_frames": true.
  if (saw_batch_mode) config.controller.batch_frames = false;
  return config;
}

namespace {

json::Value latency_to_json(const sim::LatencyModel& model) {
  json::Object obj;
  switch (model.kind) {
    case sim::LatencyKind::kConstant:
      obj.set("kind", json::Value("constant"));
      obj.set("ms", json::Value(model.a / 1e6));
      break;
    case sim::LatencyKind::kUniform:
      obj.set("kind", json::Value("uniform"));
      obj.set("lo_ms", json::Value(model.a / 1e6));
      obj.set("hi_ms", json::Value(model.b / 1e6));
      break;
    case sim::LatencyKind::kExponential:
      obj.set("kind", json::Value("exponential"));
      obj.set("mean_ms", json::Value(model.a / 1e6));
      break;
    case sim::LatencyKind::kLognormal:
      obj.set("kind", json::Value("lognormal"));
      obj.set("median_ms", json::Value(model.a / 1e6));
      obj.set("sigma", json::Value(model.b));
      break;
    case sim::LatencyKind::kPareto:
      obj.set("kind", json::Value("pareto"));
      obj.set("lo_ms", json::Value(model.a / 1e6));
      obj.set("hi_ms", json::Value(model.b / 1e6));
      obj.set("alpha", json::Value(model.c));
      break;
  }
  return json::Value(std::move(obj));
}

}  // namespace

json::Value config_to_json(const ExecutorConfig& config) {
  json::Object root;
  root.set("seed", json::Value(static_cast<std::int64_t>(config.seed)));

  json::Object channel;
  channel.set("latency", latency_to_json(config.channel.latency));
  channel.set("loss", json::Value(config.channel.loss_probability));
  channel.set("retransmit_timeout_ms",
              json::Value(sim::to_ms(config.channel.retransmit_timeout)));
  root.set("channel", json::Value(std::move(channel)));

  json::Object sw;
  sw.set("install", latency_to_json(config.switch_config.install_latency));
  sw.set("barrier_us",
         json::Value(sim::to_us(config.switch_config.barrier_processing)));
  sw.set("processing_us",
         json::Value(sim::to_us(config.switch_config.message_processing)));
  sw.set("batch_replies", json::Value(config.switch_config.batch_replies));
  root.set("switch", json::Value(std::move(sw)));

  root.set("use_barriers", json::Value(config.controller.use_barriers));
  root.set("max_in_flight", json::Value(static_cast<std::int64_t>(
                                config.controller.max_in_flight)));
  root.set("batch_frames", json::Value(config.controller.batch_frames));
  // Emitted only when explicit: parsing treats a present batch_mode as
  // retiring the legacy batch_frames alias, so writing "off" here would
  // strip instant-mode batching from a legacy config on a round trip.
  if (config.controller.batch_mode != controller::BatchMode::kOff)
    root.set("batch_mode",
             json::Value(controller::to_string(config.controller.batch_mode)));
  root.set("batch_window_ms",
           json::Value(sim::to_ms(config.controller.batch_window)));
  root.set("batch_bytes", json::Value(static_cast<std::int64_t>(
                              config.controller.batch_bytes)));
  root.set("admission",
           json::Value(controller::to_string(config.controller.admission)));
  root.set("admission_release",
           json::Value(
               controller::to_string(config.controller.admission_release)));
  root.set("plan_cache",
           json::Value(config.controller.plan_cache ? "on" : "off"));
  root.set("shards", json::Value(static_cast<std::int64_t>(
                         config.controller.shards)));
  root.set("partition",
           json::Value(topo::to_string(config.controller.partition)));
  root.set("exec", json::Value(sim::to_string(config.controller.exec)));
  root.set("threads", json::Value(static_cast<std::int64_t>(
                          config.controller.threads)));
  root.set("speculate", json::Value(config.controller.speculate));
  root.set("steal", json::Value(config.controller.steal));
  root.set("flow", json::Value(static_cast<std::int64_t>(config.flow)));
  root.set("priority",
           json::Value(static_cast<std::int64_t>(config.priority)));
  root.set("interval_ms", json::Value(sim::to_ms(config.interval)));

  root.set("liveness_timeout_ms",
           json::Value(sim::to_ms(config.controller.liveness_timeout)));
  root.set("failure_response",
           json::Value(
               controller::to_string(config.controller.failure_response)));
  root.set("retry_backoff_ms",
           json::Value(sim::to_ms(config.controller.retry_backoff)));
  root.set("resubmit", json::Value(config.controller.resubmit_after_rollback));
  // Emitted only when non-empty, so fault-free configs stay byte-stable.
  if (!config.faults.empty()) root.set("faults", config.faults.to_json());

  json::Object traffic;
  traffic.set("enabled", json::Value(config.with_traffic));
  traffic.set("interarrival", latency_to_json(config.traffic_interarrival));
  traffic.set("link", latency_to_json(config.link_latency));
  traffic.set("ttl", json::Value(static_cast<std::int64_t>(config.ttl)));
  traffic.set("warmup_ms", json::Value(sim::to_ms(config.warmup)));
  traffic.set("drain_ms", json::Value(sim::to_ms(config.drain)));
  root.set("traffic", json::Value(std::move(traffic)));

  return json::Value(std::move(root));
}

Result<ServiceConfig> service_config_from_json(std::string_view text) {
  Result<json::Value> doc = json::parse(text);
  if (!doc.ok()) return doc.error();
  return service_config_from_json(doc.value());
}

Result<ServiceConfig> service_config_from_json(const json::Value& value) {
  if (!value.is_object())
    return make_error(Errc::kParseError, "service config must be an object");

  // Split the document: the "service" block here, everything else through
  // the executor parser (which keeps rejecting unknown keys).
  json::Object exec_fields;
  const json::Value* service_block = nullptr;
  for (const auto& [key, field] : value.as_object()) {
    if (key == "service")
      service_block = &field;
    else
      exec_fields.set(key, field);
  }
  Result<ExecutorConfig> exec =
      config_from_json(json::Value(std::move(exec_fields)));
  if (!exec.ok()) return exec.error();

  ServiceConfig config;
  config.exec = std::move(exec).value();
  if (service_block == nullptr) return config;
  if (!service_block->is_object())
    return make_error(Errc::kParseError, "'service' must be an object");

  for (const auto& [key, field] : service_block->as_object()) {
    if (key == "flows") {
      if (!field.is_number() || field.as_int() < 1)
        return make_error(Errc::kOutOfRange, "'flows' must be >= 1");
      config.flows = static_cast<std::size_t>(field.as_int());
    } else if (key == "pool_switches") {
      if (!field.is_number() || field.as_int() < 1)
        return make_error(Errc::kOutOfRange, "'pool_switches' must be >= 1");
      config.pool_switches = static_cast<std::size_t>(field.as_int());
    } else if (key == "alternate_directions") {
      if (!field.is_bool())
        return make_error(Errc::kParseError,
                          "'alternate_directions' must be a bool");
      config.alternate_directions = field.as_bool();
    } else if (key == "rate_per_sec") {
      if (!field.is_number() || field.as_double() <= 0)
        return make_error(Errc::kOutOfRange, "'rate_per_sec' must be > 0");
      config.arrival_rate_per_sec = field.as_double();
    } else if (key == "trace_us") {
      if (!field.is_array())
        return make_error(Errc::kParseError, "'trace_us' must be an array");
      config.trace.clear();
      for (const json::Value& gap : field.as_array()) {
        if (!gap.is_number() || gap.as_double() < 0)
          return make_error(Errc::kOutOfRange,
                            "'trace_us' entries must be >= 0");
        config.trace.push_back(
            static_cast<sim::Duration>(gap.as_double() * 1e3));
      }
    } else if (key == "trace_cycle") {
      if (!field.is_bool())
        return make_error(Errc::kParseError, "'trace_cycle' must be a bool");
      config.trace_cycle = field.as_bool();
    } else if (key == "horizon_ms") {
      if (!field.is_number() || field.as_double() < 0)
        return make_error(Errc::kOutOfRange, "'horizon_ms' must be >= 0");
      config.horizon = ms(field.as_double());
    } else if (key == "target") {
      if (!field.is_number() || field.as_int() < 0)
        return make_error(Errc::kOutOfRange, "'target' must be >= 0");
      config.target_completions = static_cast<std::uint64_t>(field.as_int());
    } else if (key == "max_pending") {
      if (!field.is_number() || field.as_int() < 1)
        return make_error(Errc::kOutOfRange, "'max_pending' must be >= 1");
      config.max_pending = static_cast<std::size_t>(field.as_int());
    } else if (key == "submit_depth") {
      if (!field.is_number() || field.as_int() < 0)
        return make_error(Errc::kOutOfRange, "'submit_depth' must be >= 0");
      config.submit_depth = static_cast<std::size_t>(field.as_int());
    } else if (key == "classes") {
      if (!field.is_array() || field.as_array().empty())
        return make_error(Errc::kParseError,
                          "'classes' must be a non-empty array");
      config.classes.clear();
      for (const json::Value& entry : field.as_array()) {
        if (!entry.is_object())
          return make_error(Errc::kParseError,
                            "each class must be an object");
        ServiceClassConfig cls;
        for (const auto& [ckey, cval] : entry.as_object()) {
          if (!cval.is_number() || cval.as_double() < 0)
            return make_error(Errc::kOutOfRange,
                              "class field '" + ckey + "' must be >= 0");
          if (ckey == "rate_limit_per_sec")
            cls.rate_limit_per_sec = cval.as_double();
          else if (ckey == "burst")
            cls.burst = cval.as_double();
          else if (ckey == "weight")
            cls.weight = cval.as_double();
          else
            return make_error(Errc::kParseError,
                              "unknown class field '" + ckey + "'");
        }
        config.classes.push_back(cls);
      }
    } else if (key == "snapshot_interval_ms") {
      if (!field.is_number() || field.as_double() < 0)
        return make_error(Errc::kOutOfRange,
                          "'snapshot_interval_ms' must be >= 0");
      config.snapshot_interval = ms(field.as_double());
    } else if (key == "snapshot_window") {
      if (!field.is_number() || field.as_int() < 1)
        return make_error(Errc::kOutOfRange, "'snapshot_window' must be >= 1");
      config.snapshot_window = static_cast<std::size_t>(field.as_int());
    } else {
      return make_error(Errc::kParseError,
                        "unknown service field '" + key + "'");
    }
  }
  return config;
}

json::Value service_config_to_json(const ServiceConfig& config) {
  json::Value root = config_to_json(config.exec);

  json::Object service;
  service.set("flows",
              json::Value(static_cast<std::int64_t>(config.flows)));
  service.set("pool_switches", json::Value(static_cast<std::int64_t>(
                                   config.pool_switches)));
  service.set("alternate_directions",
              json::Value(config.alternate_directions));
  service.set("rate_per_sec", json::Value(config.arrival_rate_per_sec));
  if (!config.trace.empty()) {
    json::Array trace;
    for (const sim::Duration gap : config.trace)
      trace.emplace_back(static_cast<double>(gap) / 1e3);
    service.set("trace_us", json::Value(std::move(trace)));
    service.set("trace_cycle", json::Value(config.trace_cycle));
  }
  service.set("horizon_ms", json::Value(sim::to_ms(config.horizon)));
  service.set("target", json::Value(static_cast<std::int64_t>(
                            config.target_completions)));
  service.set("max_pending", json::Value(static_cast<std::int64_t>(
                                 config.max_pending)));
  service.set("submit_depth", json::Value(static_cast<std::int64_t>(
                                  config.submit_depth)));
  json::Array classes;
  for (const ServiceClassConfig& cls : config.classes) {
    json::Object entry;
    entry.set("rate_limit_per_sec", json::Value(cls.rate_limit_per_sec));
    entry.set("burst", json::Value(cls.burst));
    entry.set("weight", json::Value(cls.weight));
    classes.push_back(json::Value(std::move(entry)));
  }
  service.set("classes", json::Value(std::move(classes)));
  service.set("snapshot_interval_ms",
              json::Value(sim::to_ms(config.snapshot_interval)));
  service.set("snapshot_window", json::Value(static_cast<std::int64_t>(
                                     config.snapshot_window)));
  root.as_object().set("service", json::Value(std::move(service)));
  return root;
}

}  // namespace tsu::core
