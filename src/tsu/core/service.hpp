// Always-on open-loop service mode: instead of submitting a fixed workload
// and draining (the closed loop every execute_* entry point runs), the
// service executor keeps a pool of update templates and injects requests
// into the running control plane at times drawn from an arrival process
// (topo/arrivals.hpp) - Poisson or trace-driven - independent of how fast
// the engine completes them. That makes the questions the closed loop
// cannot ask observable: what saturates first, how deep the backlog grows,
// what gets rejected, and whether memory stays flat while cumulative work
// grows without bound.
//
// Admission pipeline (all sim-time, fully deterministic under one seed):
//
//   arrival ──> pending queue ──> per-class token bucket ──> submit
//               (bounded:          (rate_limit_per_sec,       (controller
//                overflow =         deferred = throttled)      admission DAG,
//                rejected)                                     max_in_flight)
//
// Requests carry a priority class (0 = highest): the pending queue releases
// strictly-lowest-class first (FIFO within a class), and the controller's
// own start scan honours the same order among admissible queued requests.
//
// Bounded-memory contract: the service loop holds no per-request state
// beyond the bounded pending queue and the controller's own in-flight maps;
// completions stream into CompletionLog aggregates plus a fixed recent
// ring. A run of 10 million updates retains exactly as much memory as a run
// of ten thousand - the soak test pins this with allocator watermarks.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tsu/controller/completion_log.hpp"
#include "tsu/core/executor.hpp"
#include "tsu/dataplane/monitor.hpp"
#include "tsu/sim/time.hpp"
#include "tsu/topo/arrivals.hpp"
#include "tsu/util/status.hpp"

namespace tsu::controller {
class ShardCoordinator;
}

namespace tsu::core {

// One admission priority class. Class index = priority (0 served first).
struct ServiceClassConfig {
  // Token-bucket release rate for this class, requests/second; 0 = no
  // limit. A throttled class defers its head-of-line request (counted in
  // ServiceStats::throttled) without blocking lower-priority classes.
  double rate_limit_per_sec = 0;
  // Token-bucket burst capacity (whole requests).
  double burst = 1;
  // Relative share of arrivals labelled with this class.
  double weight = 1;
};

struct ServiceConfig {
  // Control-plane wiring (channel, switch, controller, traffic, seed). The
  // closed-loop warmup/drain fields are ignored; with_traffic still
  // controls whether the consistency oracle observes packets.
  ExecutorConfig exec;

  // Update-template pool: `flows` two-path instances over `pool_switches`
  // switches (topo::pool_workload). Each arrival picks a template uniformly;
  // when alternate_directions, consecutive submissions of one template flip
  // between old->new and new->old so the data plane always transitions from
  // its actual current state.
  std::size_t flows = 8;
  std::size_t pool_switches = 48;
  bool alternate_directions = true;

  // Arrival process: a non-empty trace wins, else Poisson at arrival_rate.
  double arrival_rate_per_sec = 2000;
  std::vector<sim::Duration> trace;  // interarrival gaps (ns)
  bool trace_cycle = true;

  // Stop admitting arrivals at sim-time `horizon` (0 = none), or once
  // `target_completions` requests have been ACCEPTED into the pending
  // queue (0 = none) - every accepted request still completes, so the
  // completion count reaches the target. At least one bound is required.
  sim::Duration horizon = 0;
  std::uint64_t target_completions = 0;

  // Bounded pending queue: an arrival finding it full is REJECTED (load
  // shedding), not buffered - the invariant that makes steady-state memory
  // independent of overload duration.
  std::size_t max_pending = 1024;

  // Priority classes; index = class = UpdateRequest::priority_class.
  // Default: one unlimited class 0 (plain FIFO open loop).
  std::vector<ServiceClassConfig> classes = {ServiceClassConfig{}};

  // How many requests may sit in the controller (queued + active) before
  // the release loop holds the rest in the pending queue. 0 = 2 x
  // max_in_flight x shards - deep enough to keep every slot fed, shallow
  // enough that priority reordering happens in the pending queue where it
  // is cheap.
  std::size_t submit_depth = 0;

  // Live stats: every `snapshot_interval` of sim time (0 = off) a
  // ServiceSnapshot is appended to a bounded ring of `snapshot_window`
  // entries and handed to `on_snapshot` (if set) - the feed behind
  // sim_cli --serve and the REST stats document.
  sim::Duration snapshot_interval = 0;
  std::size_t snapshot_window = 64;
  std::function<void(const struct ServiceSnapshot&)> on_snapshot;

  // Test hook: runs against the wired controller before the first arrival
  // (the soak test uses it to pre-exhaust the xid space and force sequence
  // wrap + recycling mid-run).
  std::function<void(controller::ShardCoordinator&)> tune;
};

// Per-class streaming counters.
struct ServiceClassStats {
  std::uint64_t arrivals = 0;
  std::uint64_t accepted = 0;   // entered the pending queue
  std::uint64_t rejected = 0;   // pending queue full
  std::uint64_t submitted = 0;  // released to the controller
  std::uint64_t completed = 0;
  std::uint64_t throttled = 0;  // head-of-line deferrals by the bucket
};

// Streaming service counters - O(classes) memory regardless of run length.
struct ServiceStats {
  std::uint64_t arrivals = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t throttled = 0;
  std::size_t peak_pending = 0;
  std::size_t peak_controller_depth = 0;  // queued + active high-water
  // Compiled-plan cache counters (all zero when controller.plan_cache is
  // off): compiles = cache misses that built a plan, hits = submissions
  // served from a cached plan, invalidations = cached plans discarded
  // because a fault-driven resync bumped the generation.
  std::uint64_t plan_compiles = 0;
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_invalidations = 0;
  std::vector<ServiceClassStats> by_class;
};

// One live snapshot of the serving system (all cumulative unless noted).
struct ServiceSnapshot {
  sim::SimTime at = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::size_t pending = 0;            // service pending queue, now
  std::size_t controller_depth = 0;   // controller queued + active, now
  std::size_t steady_state_entries = 0;
  // Plan-cache counters, cumulative (see ServiceStats).
  std::uint64_t plan_compiles = 0;
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_invalidations = 0;
  double window_throughput_per_sec = 0;  // completions since last snapshot
  // Cumulative latency quantiles from the streaming histograms.
  double p50_duration_ms = 0;
  double p99_duration_ms = 0;
  double p50_wait_ms = 0;   // admission wait: enqueued -> started
  double p99_wait_ms = 0;
};

struct ServiceResult {
  ServiceStats stats;
  // Lifetime aggregation of every completion (count, aborted, streaming
  // mean/stddev and log-histogram quantiles of duration and admission
  // wait) plus the fixed-size recent window.
  controller::CompletionStats completions;
  std::vector<controller::UpdateMetrics> recent;
  // Consistency oracle over the whole run (empty when !with_traffic).
  dataplane::MonitorReport traffic;
  std::vector<ServiceSnapshot> snapshots;  // last snapshot_window, in order
  // Controller map/queue entries after the drain - the leak detector; a
  // healthy run ends at 0.
  std::size_t steady_state_entries_final = 0;
  std::uint64_t final_state_digest = 0;
  sim::Duration sim_duration = 0;  // first arrival -> last completion
  double wall_ms = 0;
  std::size_t frames_sent = 0;
  // Xid sequence numbers sitting in the per-shard recycle free lists after
  // the drain - nonzero proves updates retired and released their xids.
  std::size_t retired_xids = 0;

  double sustained_per_sec() const noexcept {
    return sim_duration == 0
               ? 0
               : static_cast<double>(stats.completed) * 1e9 /
                     static_cast<double>(sim_duration);
  }
};

// Runs the open-loop service until arrivals stop (horizon / target /
// exhausted trace) and the system drains. Deterministic per seed.
Result<ServiceResult> execute_service(const ServiceConfig& config);

}  // namespace tsu::core
