// JSON-configurable experiments: parse an ExecutorConfig (and the latency
// models inside it) from a config document, so deployments and experiment
// sweeps can be described as data instead of code.
//
// Schema (all fields optional; unknown keys are rejected):
// {
//   "seed": 1,
//   "channel":  { "latency": <latency>, "loss": 0.01,
//                 "retransmit_timeout_ms": 50 },
//   "switch":   { "install": <latency>, "barrier_us": 100,
//                 "processing_us": 10, "batch_replies": false },
//   "use_barriers": true,
//   "max_in_flight": 1, "batch_frames": false,
//   "batch_mode": "off" | "instant" | "window" | "adaptive",
//   "batch_window_ms": 0.5, "batch_bytes": 16384,
//   "admission": "blind" | "conflict_aware" | "serialize",
//   "admission_release": "request" | "round",
//   "plan_cache": "on" | "off",
//   "shards": 1, "partition": "hash" | "block" | "greedy_cut",
//   "exec": "sequential" | "parallel", "threads": 0,
//   "flow": 1, "priority": 100, "interval_ms": 0,
//   "liveness_timeout_ms": 0, "failure_response": "wait" | "rollback",
//   "retry_backoff_ms": 0, "resubmit": true,
//   "faults":   { "events": [ { "kind": "crash" | "link_down" | "blackhole",
//                 "at_ms": 8, "node": 3, "down_ms": 5, "lose_state": true,
//                 "frames": 2 }, ... ] }   (or the bare events array),
//   "traffic":  { "enabled": true, "interarrival": <latency>,
//                 "link": <latency>, "ttl": 64,
//                 "warmup_ms": 5, "drain_ms": 20 }
// }
// <latency> is one of:
//   { "kind": "constant",    "ms": 1.0 }
//   { "kind": "uniform",     "lo_ms": 0.1, "hi_ms": 8.0 }
//   { "kind": "exponential", "mean_ms": 1.0 }
//   { "kind": "lognormal",   "median_ms": 1.0, "sigma": 0.5 }
//   { "kind": "pareto",      "lo_ms": 0.5, "hi_ms": 50.0, "alpha": 1.3 }
//
// A service document (service_config_from_json) reuses the executor schema
// at the top level and adds one "service" object carrying the open-loop
// knobs (core/service.hpp):
//   "service": {
//     "flows": 8, "pool_switches": 48, "alternate_directions": true,
//     "rate_per_sec": 2000,
//     "trace_us": [100, 250, ...], "trace_cycle": true,
//     "horizon_ms": 0, "target": 0,
//     "max_pending": 1024, "submit_depth": 0,
//     "classes": [ { "rate_limit_per_sec": 0, "burst": 1, "weight": 1 } ],
//     "snapshot_interval_ms": 0, "snapshot_window": 64
//   }
#pragma once

#include <string_view>

#include "tsu/core/executor.hpp"
#include "tsu/core/service.hpp"
#include "tsu/json/json.hpp"
#include "tsu/util/status.hpp"

namespace tsu::core {

// Parses a latency model from its JSON description.
Result<sim::LatencyModel> latency_from_json(const json::Value& value);

// Parses a full executor configuration; fields not present keep the
// defaults of ExecutorConfig{}.
Result<ExecutorConfig> config_from_json(std::string_view text);
Result<ExecutorConfig> config_from_json(const json::Value& value);

// Round-trip support: renders a config back to JSON (compact).
json::Value config_to_json(const ExecutorConfig& config);

// Parses a service document: executor fields at the top level plus the
// optional "service" block above. Fields not present keep ServiceConfig
// defaults; unknown keys (either level) are rejected.
Result<ServiceConfig> service_config_from_json(std::string_view text);
Result<ServiceConfig> service_config_from_json(const json::Value& value);

// Renders the service document (executor fields + "service" block).
json::Value service_config_to_json(const ServiceConfig& config);

}  // namespace tsu::core
