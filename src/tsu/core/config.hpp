// JSON-configurable experiments: parse an ExecutorConfig (and the latency
// models inside it) from a config document, so deployments and experiment
// sweeps can be described as data instead of code.
//
// Schema (all fields optional; unknown keys are rejected):
// {
//   "seed": 1,
//   "channel":  { "latency": <latency>, "loss": 0.01,
//                 "retransmit_timeout_ms": 50 },
//   "switch":   { "install": <latency>, "barrier_us": 100,
//                 "processing_us": 10, "batch_replies": false },
//   "use_barriers": true,
//   "max_in_flight": 1, "batch_frames": false,
//   "batch_mode": "off" | "instant" | "window" | "adaptive",
//   "batch_window_ms": 0.5, "batch_bytes": 16384,
//   "admission": "blind" | "conflict_aware" | "serialize",
//   "admission_release": "request" | "round",
//   "shards": 1, "partition": "hash" | "block" | "greedy_cut",
//   "exec": "sequential" | "parallel", "threads": 0,
//   "flow": 1, "priority": 100, "interval_ms": 0,
//   "liveness_timeout_ms": 0, "failure_response": "wait" | "rollback",
//   "retry_backoff_ms": 0, "resubmit": true,
//   "faults":   { "events": [ { "kind": "crash" | "link_down" | "blackhole",
//                 "at_ms": 8, "node": 3, "down_ms": 5, "lose_state": true,
//                 "frames": 2 }, ... ] }   (or the bare events array),
//   "traffic":  { "enabled": true, "interarrival": <latency>,
//                 "link": <latency>, "ttl": 64,
//                 "warmup_ms": 5, "drain_ms": 20 }
// }
// <latency> is one of:
//   { "kind": "constant",    "ms": 1.0 }
//   { "kind": "uniform",     "lo_ms": 0.1, "hi_ms": 8.0 }
//   { "kind": "exponential", "mean_ms": 1.0 }
//   { "kind": "lognormal",   "median_ms": 1.0, "sigma": 0.5 }
//   { "kind": "pareto",      "lo_ms": 0.5, "hi_ms": 50.0, "alpha": 1.3 }
#pragma once

#include <string_view>

#include "tsu/core/executor.hpp"
#include "tsu/json/json.hpp"
#include "tsu/util/status.hpp"

namespace tsu::core {

// Parses a latency model from its JSON description.
Result<sim::LatencyModel> latency_from_json(const json::Value& value);

// Parses a full executor configuration; fields not present keep the
// defaults of ExecutorConfig{}.
Result<ExecutorConfig> config_from_json(std::string_view text);
Result<ExecutorConfig> config_from_json(const json::Value& value);

// Round-trip support: renders a config back to JSON (compact).
json::Value config_to_json(const ExecutorConfig& config);

}  // namespace tsu::core
