// Public planning API: pick an algorithm, get a verified schedule.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "tsu/update/instance.hpp"
#include "tsu/update/schedule.hpp"
#include "tsu/update/schedulers.hpp"
#include "tsu/verify/checker.hpp"

namespace tsu::core {

enum class Algorithm {
  kOneShot,
  kTwoPhase,
  kWayUp,
  kPeacock,
  kSlfGreedy,
  kSecure,
  kOptimal,
};

const char* to_string(Algorithm algorithm) noexcept;
std::optional<Algorithm> algorithm_from_string(std::string_view name) noexcept;

// The transient property each algorithm is *supposed* to guarantee; used by
// default when verifying its output (OneShot/TwoPhase are baselines and
// guarantee nothing - they map to the full security property so violations
// surface).
std::uint32_t default_property(Algorithm algorithm,
                               bool has_waypoint) noexcept;

struct PlannerOptions {
  update::SchedulerOptions scheduler;
  update::PeacockOptions peacock;
  update::SecureOptions secure;
  update::OptimalOptions optimal;
  // Verify the schedule with the model checker before returning it.
  bool verify = false;
  verify::CheckOptions check;
};

struct PlanOutcome {
  update::Schedule schedule;
  // Present when options.verify was set.
  std::optional<verify::CheckReport> report;
};

Result<PlanOutcome> plan(const update::Instance& inst, Algorithm algorithm,
                         const PlannerOptions& options = {});

}  // namespace tsu::core
