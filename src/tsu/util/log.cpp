#include "tsu/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace tsu {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

constexpr const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void log_write(LogLevel level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[tsu %-5s] %s\n", level_name(level), message.c_str());
}

}  // namespace detail
}  // namespace tsu
