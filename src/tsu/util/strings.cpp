#include "tsu/util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace tsu {

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0)
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0)
    --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::optional<std::int64_t> parse_int(std::string_view text) noexcept {
  if (text.empty()) return std::nullopt;
  bool negative = false;
  std::size_t i = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    i = 1;
    if (text.size() == 1) return std::nullopt;
  }
  std::int64_t value = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return std::nullopt;
    const std::int64_t digit = c - '0';
    if (value > (INT64_MAX - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  return negative ? -value : value;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

std::string format_duration_ns(std::uint64_t ns) {
  char buf[64];
  if (ns < 1'000ULL) {
    std::snprintf(buf, sizeof(buf), "%llu ns", static_cast<unsigned long long>(ns));
  } else if (ns < 1'000'000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2f us", static_cast<double>(ns) / 1e3);
  } else if (ns < 1'000'000'000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", static_cast<double>(ns) / 1e9);
  }
  return std::string(buf);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

}  // namespace tsu
