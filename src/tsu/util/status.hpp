// Minimal Result<T> / Status types (the project targets C++20, which has no
// std::expected yet). Used on paths where failure is part of the contract:
// parsing wire frames, parsing JSON/REST input, validating update instances.
// Programming errors use TSU_ASSERT instead.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "tsu/util/assert.hpp"

namespace tsu {

// Error category. Codes are coarse; the message carries the detail.
enum class Errc {
  kInvalidArgument,
  kParseError,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kUnsupported,
  kExhausted,
};

constexpr const char* to_string(Errc c) noexcept {
  switch (c) {
    case Errc::kInvalidArgument: return "invalid_argument";
    case Errc::kParseError: return "parse_error";
    case Errc::kOutOfRange: return "out_of_range";
    case Errc::kNotFound: return "not_found";
    case Errc::kFailedPrecondition: return "failed_precondition";
    case Errc::kUnsupported: return "unsupported";
    case Errc::kExhausted: return "exhausted";
  }
  return "unknown";
}

struct Error {
  Errc code = Errc::kInvalidArgument;
  std::string message;

  std::string to_string() const {
    return std::string(tsu::to_string(code)) + ": " + message;
  }
};

// Result of an operation returning T. Either a value or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(implicit)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(implicit)

  bool ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& {
    TSU_ASSERT_MSG(ok(), "Result::value() on error");
    return std::get<T>(data_);
  }
  T& value() & {
    TSU_ASSERT_MSG(ok(), "Result::value() on error");
    return std::get<T>(data_);
  }
  T&& value() && {
    TSU_ASSERT_MSG(ok(), "Result::value() on error");
    return std::get<T>(std::move(data_));
  }

  T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  const Error& error() const& {
    TSU_ASSERT_MSG(!ok(), "Result::error() on value");
    return std::get<Error>(data_);
  }

 private:
  std::variant<T, Error> data_;
};

// Result of an operation with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;                               // success
  Status(Error error) : error_(std::move(error)) {} // NOLINT(implicit)

  static Status ok_status() { return Status{}; }

  bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  const Error& error() const& {
    TSU_ASSERT_MSG(!ok(), "Status::error() on success");
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

inline Error make_error(Errc code, std::string message) {
  return Error{code, std::move(message)};
}

}  // namespace tsu
