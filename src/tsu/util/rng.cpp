#include "tsu/util/rng.hpp"

#include <cmath>
#include <numbers>

namespace tsu {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
  TSU_ASSERT(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == ~0ULL) return (*this)();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t bound = span + 1;
  const std::uint64_t limit = (~0ULL) - ((~0ULL) % bound + 1) % bound;
  std::uint64_t draw = (*this)();
  while (draw > limit) draw = (*this)();
  return lo + draw % bound;
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) noexcept {
  TSU_ASSERT(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   uniform_u64(0, span));
}

std::size_t Rng::index(std::size_t n) noexcept {
  TSU_ASSERT(n > 0);
  return static_cast<std::size_t>(uniform_u64(0, n - 1));
}

double Rng::uniform01() noexcept {
  // 53 random mantissa bits.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  TSU_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

double Rng::exponential(double mean) noexcept {
  TSU_ASSERT(mean > 0);
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) noexcept {
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal_median(double median, double sigma) noexcept {
  TSU_ASSERT(median > 0);
  return std::exp(normal(std::log(median), sigma));
}

double Rng::pareto(double alpha, double lo, double hi) noexcept {
  TSU_ASSERT(alpha > 0 && lo > 0 && lo < hi);
  // Inverse-CDF sampling of a Pareto truncated to [lo, hi):
  //   x = lo * (1 - U * (1 - (lo/hi)^alpha))^(-1/alpha).
  const double ratio = std::pow(lo / hi, alpha);
  const double u = uniform01();
  return lo * std::pow(1.0 - u * (1.0 - ratio), -1.0 / alpha);
}

Rng Rng::fork() noexcept { return Rng((*this)() ^ 0xa5a5a5a55a5a5a5aULL); }

}  // namespace tsu
