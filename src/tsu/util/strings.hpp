// Small string helpers used by the REST parser, table printers and logs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tsu {

// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string_view> split(std::string_view text, char delim);

// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text) noexcept;

bool starts_with(std::string_view text, std::string_view prefix) noexcept;

// Strict base-10 integer parse of the whole string; nullopt on any junk.
std::optional<std::int64_t> parse_int(std::string_view text) noexcept;

// printf-style formatting into a std::string.
std::string format_double(double value, int precision);

// "1.25 ms", "980 us", "2.10 s" - human-readable durations from nanoseconds.
std::string format_duration_ns(std::uint64_t ns);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace tsu
