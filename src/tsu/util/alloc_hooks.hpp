// Global operator new/delete replacement that counts heap allocations -
// the measurement primitive behind the zero-allocation regression tests
// and the bench JSON's allocs-per-event figures.
//
// IMPORTANT: include this header in EXACTLY ONE translation unit of a
// binary (each test/bench executable is a single TU, so its main source
// file). Including it twice in one binary is an ODR violation; including
// it in the library would silently impose the hooks on every consumer.
//
// The hooks forward to malloc/free (so sanitizers keep interposing at the
// malloc layer underneath) and bump a relaxed atomic counter. Counting is
// process-wide: measurements must bracket a window where only the code
// under test runs.
//
// On glibc the hooks additionally track live heap bytes: every new adds
// malloc_usable_size() of the block, every delete subtracts it. The soak
// test uses live_bytes() as a steady-state watermark - a leak shows up as
// monotonic growth window-over-window even when allocation *counts* look
// flat (e.g. a container that keeps growing in-place). Where
// malloc_usable_size is unavailable the byte counters read 0 and callers
// must skip watermark assertions.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#if defined(__has_include)
#if __has_include(<malloc.h>) && defined(__GLIBC__)
#define TSU_ALLOC_HOOKS_HAVE_USABLE_SIZE 1
#include <malloc.h>
#endif
#endif
#ifndef TSU_ALLOC_HOOKS_HAVE_USABLE_SIZE
#define TSU_ALLOC_HOOKS_HAVE_USABLE_SIZE 0
#endif

namespace tsu::alloc_hooks {

inline std::atomic<std::uint64_t> g_allocations{0};
inline std::atomic<std::uint64_t> g_live_bytes{0};

// Total operator-new calls since process start.
inline std::uint64_t allocations() noexcept {
  return g_allocations.load(std::memory_order_relaxed);
}

// Bytes currently allocated through operator new (usable sizes, glibc
// only - 0 elsewhere). Process-wide, so bracket a quiesced window.
inline std::uint64_t live_bytes() noexcept {
  return g_live_bytes.load(std::memory_order_relaxed);
}

// True when live_bytes() actually tracks the heap (glibc).
inline constexpr bool tracks_live_bytes() noexcept {
  return TSU_ALLOC_HOOKS_HAVE_USABLE_SIZE != 0;
}

// Setup watermark: benches and tests call mark_setup_complete() the moment
// harness construction (topology, switches, channels, template pools) is
// done, freezing the allocation count at that instant. setup_allocations()
// then reports what setup alone cost - the figure the per-shard setup
// arenas (util/arena.hpp) are meant to keep from scaling per-object - while
// the existing bracketing of allocations() keeps measuring the steady
// state. Process-wide like every other counter here.
inline std::atomic<std::uint64_t> g_setup_mark{0};

inline void mark_setup_complete() noexcept {
  g_setup_mark.store(allocations(), std::memory_order_relaxed);
}
inline std::uint64_t setup_allocations() noexcept {
  return g_setup_mark.load(std::memory_order_relaxed);
}

inline void note_alloc(void* p) noexcept {
#if TSU_ALLOC_HOOKS_HAVE_USABLE_SIZE
  g_live_bytes.fetch_add(malloc_usable_size(p), std::memory_order_relaxed);
#else
  (void)p;
#endif
}

inline void note_free(void* p) noexcept {
#if TSU_ALLOC_HOOKS_HAVE_USABLE_SIZE
  if (p != nullptr)
    g_live_bytes.fetch_sub(malloc_usable_size(p), std::memory_order_relaxed);
#else
  (void)p;
#endif
}

inline void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  note_alloc(p);
  return p;
}

inline void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = align;
  // aligned_alloc requires size to be a multiple of alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded);
  if (p == nullptr) throw std::bad_alloc();
  note_alloc(p);
  return p;
}

inline void counted_free(void* p) noexcept {
  note_free(p);
  std::free(p);
}

}  // namespace tsu::alloc_hooks

void* operator new(std::size_t size) {
  return tsu::alloc_hooks::counted_alloc(size);
}
void* operator new[](std::size_t size) {
  return tsu::alloc_hooks::counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return tsu::alloc_hooks::counted_alloc_aligned(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return tsu::alloc_hooks::counted_alloc_aligned(
      size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return tsu::alloc_hooks::counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return tsu::alloc_hooks::counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { tsu::alloc_hooks::counted_free(p); }
void operator delete[](void* p) noexcept { tsu::alloc_hooks::counted_free(p); }
void operator delete(void* p, std::size_t) noexcept {
  tsu::alloc_hooks::counted_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  tsu::alloc_hooks::counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  tsu::alloc_hooks::counted_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  tsu::alloc_hooks::counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  tsu::alloc_hooks::counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  tsu::alloc_hooks::counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  tsu::alloc_hooks::counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  tsu::alloc_hooks::counted_free(p);
}
