// Global operator new/delete replacement that counts heap allocations -
// the measurement primitive behind the zero-allocation regression tests
// and the bench JSON's allocs-per-event figures.
//
// IMPORTANT: include this header in EXACTLY ONE translation unit of a
// binary (each test/bench executable is a single TU, so its main source
// file). Including it twice in one binary is an ODR violation; including
// it in the library would silently impose the hooks on every consumer.
//
// The hooks forward to malloc/free (so sanitizers keep interposing at the
// malloc layer underneath) and bump a relaxed atomic counter. Counting is
// process-wide: measurements must bracket a window where only the code
// under test runs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace tsu::alloc_hooks {

inline std::atomic<std::uint64_t> g_allocations{0};

// Total operator-new calls since process start.
inline std::uint64_t allocations() noexcept {
  return g_allocations.load(std::memory_order_relaxed);
}

inline void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

inline void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = align;
  // aligned_alloc requires size to be a multiple of alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace tsu::alloc_hooks

void* operator new(std::size_t size) {
  return tsu::alloc_hooks::counted_alloc(size);
}
void* operator new[](std::size_t size) {
  return tsu::alloc_hooks::counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return tsu::alloc_hooks::counted_alloc_aligned(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return tsu::alloc_hooks::counted_alloc_aligned(
      size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return tsu::alloc_hooks::counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return tsu::alloc_hooks::counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
