// Tiny leveled logger. The simulator is single-threaded by design (a DES has
// one logical clock), so no synchronization is needed; the logger still takes
// a lock so examples/benches may log from helper threads safely.
#pragma once

#include <sstream>
#include <string>

namespace tsu {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

// Process-wide minimum level; defaults to kWarn so tests/benches stay quiet.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void log_write(LogLevel level, const std::string& message);
}

// Usage: TSU_LOG(kInfo) << "round " << r << " done";
#define TSU_LOG(level_suffix)                                           \
  if (::tsu::LogLevel::level_suffix < ::tsu::log_level()) {             \
  } else                                                                \
    ::tsu::detail::LogLine(::tsu::LogLevel::level_suffix)

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_write(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace tsu
