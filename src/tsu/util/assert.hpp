// Precondition/invariant checking that stays on in release builds.
//
// The simulator and the schedulers are deterministic given a seed; a violated
// invariant is always a programming error, so we fail fast with a message
// instead of limping on with undefined behaviour.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tsu::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "tsu: assertion failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] != '\0' ? " - " : "", msg);
  std::abort();
}

}  // namespace tsu::detail

#define TSU_ASSERT(expr)                                              \
  ((expr) ? static_cast<void>(0)                                      \
          : ::tsu::detail::assert_fail(#expr, __FILE__, __LINE__, ""))

#define TSU_ASSERT_MSG(expr, msg)                                      \
  ((expr) ? static_cast<void>(0)                                       \
          : ::tsu::detail::assert_fail(#expr, __FILE__, __LINE__, msg))
