// Flat circular FIFO backed by one contiguous slot vector.
//
// libstdc++'s std::deque allocates a fresh ~512-byte chunk roughly every
// 32 pushes even when the queue depth is constant (chunks are freed on
// pop and re-allocated on push), which makes deque-backed hot-path queues
// a steady-state allocator. FlatRing reuses its slots forever: pop_front
// only advances the head - the slot object stays alive, so element types
// with internal capacity (vectors, variants of such) keep it across
// reuse - and the backing vector grows geometrically only when depth
// exceeds every previous high-water mark. Past that mark a
// push/pop regime of any length performs zero allocations.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "tsu/util/assert.hpp"

namespace tsu::util {

template <typename T>
class FlatRing {
 public:
  bool empty() const noexcept { return count_ == 0; }
  std::size_t size() const noexcept { return count_; }

  T& front() noexcept {
    TSU_ASSERT(count_ > 0);
    return slots_[head_];
  }
  const T& front() const noexcept {
    TSU_ASSERT(count_ > 0);
    return slots_[head_];
  }

  // Advances the head without destroying the slot: the element object
  // survives (typically moved-from) and its capacity is reused by a
  // later push into the same slot.
  void pop_front() noexcept {
    TSU_ASSERT(count_ > 0);
    head_ = (head_ + 1) % slots_.size();
    --count_;
  }

  void push_back(const T& value) { *next_slot() = value; }
  void push_back(T&& value) { *next_slot() = std::move(value); }

  // Drops the queued elements; slots (and their capacity) stay.
  void clear() noexcept {
    head_ = 0;
    count_ = 0;
  }

 private:
  T* next_slot() {
    if (count_ == slots_.size()) grow();
    T* slot = &slots_[(head_ + count_) % slots_.size()];
    ++count_;
    return slot;
  }

  void grow() {
    const std::size_t old_cap = slots_.size();
    std::vector<T> bigger(old_cap == 0 ? 8 : old_cap * 2);
    for (std::size_t i = 0; i < count_; ++i)
      bigger[i] = std::move(slots_[(head_ + i) % old_cap]);
    slots_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace tsu::util
