// A monotonic setup arena: chunked placement-new storage for the
// fixed-population objects built once at harness setup (switches, duplex
// channels) and torn down wholesale at the end of a run. Construction cost
// drops from one heap allocation per object to one per chunk, and the
// per-shard arenas in the executor keep each shard's objects contiguous -
// the setup-allocation watermark in the hot-path bench (alloc_hooks.hpp)
// tracks the effect.
//
// NOT a general allocator: nothing is ever freed individually, objects are
// destroyed in reverse creation order when the arena dies, and the arena
// must outlive every object it handed out. Steady-state code must not
// allocate here - the arena is for the setup phase by construction.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace tsu::util {

class SetupArena {
 public:
  explicit SetupArena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}
  ~SetupArena() {
    // Reverse creation order, like stack unwinding.
    for (std::size_t i = dtors_.size(); i-- > 0;) dtors_[i].fn(dtors_[i].obj);
  }
  SetupArena(const SetupArena&) = delete;
  SetupArena& operator=(const SetupArena&) = delete;

  // Constructs a T inside the arena and returns it; the arena owns the
  // lifetime. If the constructor throws, the slot is abandoned (monotonic
  // storage: no per-object free exists to give it back).
  template <class T, class... Args>
  T* make(Args&&... args) {
    void* slot = allocate(sizeof(T), alignof(T));
    T* obj = new (slot) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      dtors_.push_back(Dtor{obj, [](void* p) { static_cast<T*>(p)->~T(); }});
    return obj;
  }

  // Chunks allocated so far - the arena's entire heap footprint besides
  // the destructor list.
  std::size_t chunks() const noexcept { return chunks_.size(); }
  std::size_t objects() const noexcept { return dtors_.size(); }

  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };
  struct Dtor {
    void* obj;
    void (*fn)(void*);
  };

  void* allocate(std::size_t size, std::size_t align) {
    if (!chunks_.empty()) {
      if (void* p = try_fit(chunks_.back(), size, align)) return p;
    }
    Chunk chunk;
    // Oversized requests get a dedicated chunk; +align guarantees the fit
    // whatever the fresh block's base alignment.
    chunk.size = std::max(chunk_bytes_, size + align);
    chunk.data = std::make_unique<std::byte[]>(chunk.size);
    chunks_.push_back(std::move(chunk));
    void* p = try_fit(chunks_.back(), size, align);
    return p;  // cannot fail by the sizing above
  }

  static void* try_fit(Chunk& chunk, std::size_t size,
                       std::size_t align) noexcept {
    void* p = chunk.data.get() + chunk.used;
    std::size_t space = chunk.size - chunk.used;
    if (std::align(align, size, p, space) == nullptr) return nullptr;
    chunk.used =
        static_cast<std::size_t>(static_cast<std::byte*>(p) -
                                 chunk.data.get()) +
        size;
    return p;
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::vector<Dtor> dtors_;
};

}  // namespace tsu::util
