// Strongly-typed identifiers shared across the library.
//
// NodeId indexes vertices of the network graph (dense, 0-based).
// DatapathId is the OpenFlow-style 64-bit switch identifier used on the
// control channel; topologies keep a NodeId <-> DatapathId mapping so that
// graph algorithms can work on dense indices while protocol code speaks
// datapath ids, exactly like the Ryu prototype in the paper.
#pragma once

#include <cstdint>
#include <limits>

namespace tsu {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

using DatapathId = std::uint64_t;
inline constexpr DatapathId kInvalidDatapath =
    std::numeric_limits<DatapathId>::max();

// Transaction id carried in OpenFlow-like message headers.
using Xid = std::uint32_t;

// Flow identifier used by the match model (the demo updates one policy,
// i.e. one flow, at a time; multi-policy queues use several FlowIds).
using FlowId = std::uint64_t;

}  // namespace tsu
