// Deterministic, seedable random number generation.
//
// Every stochastic component in the simulator (channel latencies, FlowMod
// install times, traffic inter-arrival, workload generators) draws from an
// Rng that is seeded explicitly, so every experiment in EXPERIMENTS.md is
// reproducible bit-for-bit. The engine is xoshiro256** seeded via SplitMix64,
// which is small, fast and has no measurable bias for our use.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "tsu/util/assert.hpp"

namespace tsu {

// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  // Raw 64 random bits (xoshiro256**).
  result_type operator()() noexcept;

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept;
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) noexcept;
  // Uniform size_t in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) noexcept;

  // Uniform double in [0, 1).
  double uniform01() noexcept;
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  bool bernoulli(double p) noexcept;

  // Exponential with the given mean (not rate). Requires mean > 0.
  double exponential(double mean) noexcept;

  // Standard normal via Box-Muller, then scaled.
  double normal(double mean, double stddev) noexcept;

  // Lognormal parameterized by the *median* and sigma of the underlying
  // normal: exp(N(ln(median), sigma)). Convenient for latency models.
  double lognormal_median(double median, double sigma) noexcept;

  // Bounded Pareto with shape alpha on [lo, hi). Heavy-tailed latencies.
  double pareto(double alpha, double lo, double hi) noexcept;

  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  template <typename T>
  const T& pick(const std::vector<T>& v) noexcept {
    TSU_ASSERT(!v.empty());
    return v[index(v.size())];
  }

  // Derive an independent child generator (stream splitting for per-switch /
  // per-channel randomness without cross-correlation).
  Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace tsu
