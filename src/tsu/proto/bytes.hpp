// Bounds-checked binary readers/writers (big-endian, like OpenFlow).
//
// Writer either OWNS its buffer (default constructor - handy in tests and
// one-shot encodes) or BORROWS a caller-provided vector, appending in
// place. The borrowed form is the hot-path mode: the channel keeps a pool
// of frame buffers and re-encodes into them, so steady-state encoding
// never allocates once buffers reach their high-water capacity.
//
// Reader::bytes returns a VIEW into the underlying buffer - valid only as
// long as the buffer outlives it. Callers that retain the bytes past the
// buffer's lifetime use bytes_copy, which is the old copying behaviour
// under an explicit name.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tsu/util/status.hpp"

namespace tsu::proto {

class Writer {
 public:
  // Owning mode: writes into an internal vector.
  Writer() noexcept : buf_(&own_) {}
  // Borrowed mode: appends to `out` (not cleared - the caller controls
  // reuse). `out` must outlive the Writer.
  explicit Writer(std::vector<std::byte>& out) noexcept : buf_(&out) {}
  // buf_ points into *this in owning mode, so the type must stay put.
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  void u8(std::uint8_t v) { buf_->push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::byte> data);
  void zeros(std::size_t count);

  // Patches a previously written big-endian u16 at `offset`.
  void patch_u16(std::size_t offset, std::uint16_t v);

  std::size_t size() const noexcept { return buf_->size(); }
  const std::vector<std::byte>& data() const noexcept { return *buf_; }
  std::vector<std::byte> take() && { return std::move(*buf_); }

 private:
  std::vector<std::byte> own_;
  std::vector<std::byte>* buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  std::size_t position() const noexcept { return pos_; }
  bool exhausted() const noexcept { return pos_ >= data_.size(); }

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Status skip(std::size_t count);
  // Zero-copy view into the reader's buffer; invalidated with the buffer.
  Result<std::span<const std::byte>> bytes(std::size_t count);
  // Owning copy, for callers that keep the bytes past the buffer's life.
  Result<std::vector<std::byte>> bytes_copy(std::size_t count);

 private:
  Error underflow(std::size_t want) const;

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace tsu::proto
