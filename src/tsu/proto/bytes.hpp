// Bounds-checked binary readers/writers (big-endian, like OpenFlow).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tsu/util/status.hpp"

namespace tsu::proto {

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::byte> data);
  void zeros(std::size_t count);

  // Patches a previously written big-endian u16 at `offset`.
  void patch_u16(std::size_t offset, std::uint16_t v);

  std::size_t size() const noexcept { return buf_.size(); }
  const std::vector<std::byte>& data() const noexcept { return buf_; }
  std::vector<std::byte> take() && { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  std::size_t position() const noexcept { return pos_; }
  bool exhausted() const noexcept { return pos_ >= data_.size(); }

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Status skip(std::size_t count);
  Result<std::vector<std::byte>> bytes(std::size_t count);

 private:
  Error underflow(std::size_t want) const;

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace tsu::proto
