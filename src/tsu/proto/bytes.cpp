#include "tsu/proto/bytes.hpp"

namespace tsu::proto {

void Writer::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v >> 8));
  u8(static_cast<std::uint8_t>(v));
}

void Writer::bytes(std::span<const std::byte> data) {
  buf_->insert(buf_->end(), data.begin(), data.end());
}

void Writer::zeros(std::size_t count) {
  buf_->insert(buf_->end(), count, std::byte{0});
}

void Writer::patch_u16(std::size_t offset, std::uint16_t v) {
  TSU_ASSERT(offset + 2 <= buf_->size());
  (*buf_)[offset] = static_cast<std::byte>(v >> 8);
  (*buf_)[offset + 1] = static_cast<std::byte>(v & 0xff);
}

void Writer::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v >> 16));
  u16(static_cast<std::uint16_t>(v));
}

void Writer::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

Error Reader::underflow(std::size_t want) const {
  return make_error(Errc::kOutOfRange,
                    "frame truncated: need " + std::to_string(want) +
                        " bytes at offset " + std::to_string(pos_) +
                        ", have " + std::to_string(remaining()));
}

Result<std::uint8_t> Reader::u8() {
  if (remaining() < 1) return underflow(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

Result<std::uint16_t> Reader::u16() {
  if (remaining() < 2) return underflow(2);
  const auto hi = static_cast<std::uint16_t>(data_[pos_]);
  const auto lo = static_cast<std::uint16_t>(data_[pos_ + 1]);
  pos_ += 2;
  return static_cast<std::uint16_t>(hi << 8 | lo);
}

Result<std::uint32_t> Reader::u32() {
  if (remaining() < 4) return underflow(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v = v << 8 | static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)]);
  pos_ += 4;
  return v;
}

Result<std::uint64_t> Reader::u64() {
  if (remaining() < 8) return underflow(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v = v << 8 | static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)]);
  pos_ += 8;
  return v;
}

Status Reader::skip(std::size_t count) {
  if (remaining() < count) return underflow(count);
  pos_ += count;
  return Status::ok_status();
}

Result<std::span<const std::byte>> Reader::bytes(std::size_t count) {
  if (remaining() < count) return underflow(count);
  const std::span<const std::byte> view = data_.subspan(pos_, count);
  pos_ += count;
  return view;
}

Result<std::vector<std::byte>> Reader::bytes_copy(std::size_t count) {
  const Result<std::span<const std::byte>> view = bytes(count);
  if (!view.ok()) return view.error();
  return std::vector<std::byte>(view.value().begin(), view.value().end());
}

}  // namespace tsu::proto
