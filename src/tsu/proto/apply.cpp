#include "tsu/proto/apply.hpp"

namespace tsu::proto {

void apply_flow_mod(std::map<std::uint8_t, flow::FlowTable>& tables,
                    const FlowMod& mod) {
  // Deletes never materialize a table, and a table a delete empties is
  // dropped: state that was fully unwound (e.g. a rollback's inverse mods)
  // must be structurally identical to state never touched, so the
  // forwarding-state digest cannot tell the two apart.
  if (mod.command == FlowModCommand::kDelete ||
      mod.command == FlowModCommand::kDeleteStrict) {
    const auto it = tables.find(mod.table);
    if (it == tables.end()) return;
    if (mod.command == FlowModCommand::kDelete)
      it->second.remove(mod.match);
    else
      it->second.remove_strict(mod.match, mod.priority);
    if (it->second.size() == 0) tables.erase(it);
    return;
  }
  flow::FlowTable& target = tables[mod.table];
  if (mod.command == FlowModCommand::kAdd)
    target.add(flow::FlowRule{mod.match, mod.action, mod.priority,
                              mod.cookie});
  else
    target.modify(mod.match, mod.priority, mod.action, mod.cookie);
}

}  // namespace tsu::proto
