#include "tsu/proto/apply.hpp"

namespace tsu::proto {

void apply_flow_mod(std::map<std::uint8_t, flow::FlowTable>& tables,
                    const FlowMod& mod) {
  // Deletes never materialize a table. A table a delete empties stays
  // RESIDENT but empty: erasing it would free the map node and the rule
  // vectors' capacity, turning every unwind/re-install cycle into three
  // heap allocations on the switch's hot path. State that was fully
  // unwound (e.g. a rollback's inverse mods) must still be logically
  // identical to state never touched, so every consumer treats an empty
  // table as absent: the forwarding-state digest skips size-0 tables
  // (core/executor.cpp), resync finds no rules to replay in one, and the
  // switch's announce/features replies count populated tables only.
  if (mod.command == FlowModCommand::kDelete ||
      mod.command == FlowModCommand::kDeleteStrict) {
    const auto it = tables.find(mod.table);
    if (it == tables.end()) return;
    if (mod.command == FlowModCommand::kDelete)
      it->second.remove(mod.match);
    else
      it->second.remove_strict(mod.match, mod.priority);
    return;
  }
  flow::FlowTable& target = tables[mod.table];
  if (mod.command == FlowModCommand::kAdd)
    target.add(flow::FlowRule{mod.match, mod.action, mod.priority,
                              mod.cookie});
  else
    target.modify(mod.match, mod.priority, mod.action, mod.cookie);
}

}  // namespace tsu::proto
