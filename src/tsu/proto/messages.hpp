// Control-channel message model, shaped after OpenFlow 1.x: a fixed header
// (version, type, length, xid) followed by a per-type body. The subset
// implemented is exactly what the paper's controller uses: FLOW_MOD to
// install/modify/delete rules, BARRIER_REQUEST/REPLY to fence rounds, plus
// HELLO/ECHO/ERROR for session plumbing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "tsu/flow/table.hpp"
#include "tsu/util/ids.hpp"

namespace tsu::proto {

inline constexpr std::uint8_t kProtocolVersion = 0x04;  // mirrors OF 1.3

// Shard-tagged xids: the controller shard that issued a message owns the
// top byte of the xid, so a reply routes back to its shard and the
// per-shard xid counters can never collide. The unsharded controller is
// shard 0, whose tagged xids equal the raw counter - the sharding refactor
// leaves every single-controller xid unchanged.
inline constexpr unsigned kXidShardShift = 24;
inline constexpr std::size_t kMaxXidShards = 256;
inline constexpr Xid kXidSeqMask = (Xid{1} << kXidShardShift) - 1;

inline constexpr Xid make_shard_xid(std::uint8_t shard, Xid seq) noexcept {
  return (static_cast<Xid>(shard) << kXidShardShift) | (seq & kXidSeqMask);
}
inline constexpr std::uint8_t xid_shard(Xid xid) noexcept {
  return static_cast<std::uint8_t>(xid >> kXidShardShift);
}

enum class MsgType : std::uint8_t {
  kHello = 0,
  kError = 1,
  kEchoRequest = 2,
  kEchoReply = 3,
  kFeaturesRequest = 5,
  kFeaturesReply = 6,
  kPacketOut = 13,
  kFlowMod = 14,
  kBarrierRequest = 20,
  kBarrierReply = 21,
  // Extension beyond OF 1.3: one frame carrying several coalesced messages
  // (the controller's cross-flow batching; see controller.hpp). Nesting a
  // batch inside a batch is rejected by the codec.
  kBatch = 22,
};

const char* to_string(MsgType type) noexcept;

struct Hello {};

struct Error {
  std::uint16_t code = 0;
  std::string text;
};

struct Echo {
  bool reply = false;
  std::vector<std::byte> payload;
};

struct FeaturesRequest {};

struct FeaturesReply {
  DatapathId datapath = kInvalidDatapath;
  std::uint32_t n_tables = 1;
};

enum class FlowModCommand : std::uint8_t {
  kAdd = 0,
  kModify = 1,
  kDelete = 3,
  kDeleteStrict = 4,
};

const char* to_string(FlowModCommand command) noexcept;

struct FlowMod {
  FlowModCommand command = FlowModCommand::kAdd;
  // Target flow table (OpenFlow table_id). The simulated switches hold one
  // table per id today, but the id already scopes rule footprints for
  // conflict-aware admission: mods to different tables never conflict.
  std::uint8_t table = 0;
  std::uint16_t priority = 100;
  std::uint64_t cookie = 0;
  flow::Match match;
  flow::Action action;  // ignored for deletes
};

struct PacketOut {
  flow::Packet packet;
  NodeId out_port = kInvalidNode;
};

struct BarrierRequest {};
struct BarrierReply {};

struct Message;

// Several messages for the same switch coalesced into one control frame.
// Delivery is atomic per frame; the receiver processes the contained
// messages in order, so FlowMod-then-Barrier sequences keep their fencing
// semantics. Batches must not contain batches.
struct Batch {
  std::vector<Message> messages;
};

// Messages per batch frame that keep the encoded size comfortably below
// the codec's 64 KiB frame cap (codec.hpp kMaxFrame); both batching
// directions - the controller outbox and the switch reply flush - chunk
// against this one bound.
inline constexpr std::size_t kMaxBatchMessages = 128;

using Body = std::variant<Hello, Error, Echo, FeaturesRequest, FeaturesReply,
                          FlowMod, PacketOut, BarrierRequest, BarrierReply,
                          Batch>;

struct Message {
  Xid xid = 0;
  Body body;

  MsgType type() const noexcept;
  std::string to_string() const;
};

Message make_hello(Xid xid);
Message make_echo_request(Xid xid, std::vector<std::byte> payload = {});
Message make_echo_reply(Xid xid, std::vector<std::byte> payload = {});
Message make_barrier_request(Xid xid);
Message make_barrier_reply(Xid xid);
Message make_flow_mod(Xid xid, FlowMod mod);
Message make_error(Xid xid, std::uint16_t code, std::string text);
// Asserts that no element is itself a batch.
Message make_batch(Xid xid, std::vector<Message> messages);

}  // namespace tsu::proto
