// Binary encoding of control-channel messages.
//
// Frame layout (big-endian):
//   u8  version        (kProtocolVersion)
//   u8  type           (MsgType)
//   u16 length         (whole frame, header included)
//   u32 xid
//   ... type-specific body ...
// Decoding is fully bounds-checked; malformed frames yield Errors, never
// undefined behaviour (fuzz-style tests feed random bytes through decode()).
#pragma once

#include <span>
#include <vector>

#include "tsu/proto/messages.hpp"
#include "tsu/util/status.hpp"

namespace tsu::proto {

std::vector<std::byte> encode(const Message& message);

// Zero-allocation variant: appends the encoded frame to `out` (cleared
// first). Re-using one scratch vector across calls amortizes the buffer to
// its high-water capacity - the channel's frame pool is built on this.
void encode_into(const Message& message, std::vector<std::byte>& out);

// Encoded frame size in bytes, computed from the message layout without
// encoding (allocation-free). The controller's outbox uses this to account
// its per-switch byte budget against real wire bytes; a codec test pins it
// to encode().size().
std::size_t encoded_size(const Message& message);

// Patches the xid field (header bytes [4,8), big-endian) of an
// already-encoded frame in place - the xid analogue of the length
// patch_u16 the Batch encoder uses. Pre-compiled plan frames are encoded
// once with xid 0 and patched per send, so the cached bytes stay immutable
// and the wire bytes stay identical to a fresh encode with that xid.
void patch_xid(std::span<std::byte> frame, std::uint32_t xid) noexcept;

// Reads the message type byte of an encoded frame (header byte 1) without
// decoding. Callers that route pre-encoded bytes (e.g. the channel's
// blackhole fault gate, which must know whether a frame carries a barrier)
// use this instead of a full decode.
MsgType frame_type(std::span<const std::byte> frame) noexcept;

// Decodes exactly one frame from the start of `data`.
Result<Message> decode(std::span<const std::byte> data);

// Streaming helper: decodes every complete frame in `data` (frames are
// self-delimiting via the length field); returns the byte count consumed.
struct DecodeStreamResult {
  std::vector<Message> messages;
  std::size_t consumed = 0;
};
Result<DecodeStreamResult> decode_stream(std::span<const std::byte> data);

}  // namespace tsu::proto
