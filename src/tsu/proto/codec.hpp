// Binary encoding of control-channel messages.
//
// Frame layout (big-endian):
//   u8  version        (kProtocolVersion)
//   u8  type           (MsgType)
//   u16 length         (whole frame, header included)
//   u32 xid
//   ... type-specific body ...
// Decoding is fully bounds-checked; malformed frames yield Errors, never
// undefined behaviour (fuzz-style tests feed random bytes through decode()).
#pragma once

#include <span>
#include <vector>

#include "tsu/proto/messages.hpp"
#include "tsu/util/status.hpp"

namespace tsu::proto {

std::vector<std::byte> encode(const Message& message);

// Zero-allocation variant: appends the encoded frame to `out` (cleared
// first). Re-using one scratch vector across calls amortizes the buffer to
// its high-water capacity - the channel's frame pool is built on this.
void encode_into(const Message& message, std::vector<std::byte>& out);

// Encoded frame size in bytes, computed from the message layout without
// encoding (allocation-free). The controller's outbox uses this to account
// its per-switch byte budget against real wire bytes; a codec test pins it
// to encode().size().
std::size_t encoded_size(const Message& message);

// Decodes exactly one frame from the start of `data`.
Result<Message> decode(std::span<const std::byte> data);

// Streaming helper: decodes every complete frame in `data` (frames are
// self-delimiting via the length field); returns the byte count consumed.
struct DecodeStreamResult {
  std::vector<Message> messages;
  std::size_t consumed = 0;
};
Result<DecodeStreamResult> decode_stream(std::span<const std::byte> data);

}  // namespace tsu::proto
