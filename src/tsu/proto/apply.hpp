// FlowMod -> FlowTable application semantics, shared between the simulated
// switch (switchsim) and the controller's shadow tables (fault recovery):
// the resync image a reconnecting switch receives is correct exactly
// because both sides applied every mod with the same code.
#pragma once

#include <cstdint>
#include <map>

#include "tsu/flow/table.hpp"
#include "tsu/proto/messages.hpp"

namespace tsu::proto {

// Applies `mod` to the table named by mod.table (created on first touch).
void apply_flow_mod(std::map<std::uint8_t, flow::FlowTable>& tables,
                    const FlowMod& mod);

}  // namespace tsu::proto
