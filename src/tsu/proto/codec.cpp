#include "tsu/proto/codec.hpp"

#include "tsu/proto/bytes.hpp"

namespace tsu::proto {

namespace {

constexpr std::size_t kHeaderSize = 8;
constexpr std::size_t kMaxFrame = 1u << 16;

// Match wire format: presence bitmap + present fields.
enum MatchBits : std::uint8_t {
  kHasFlow = 1u << 0,
  kHasSrc = 1u << 1,
  kHasDst = 1u << 2,
  kHasInPort = 1u << 3,
};

void encode_match(Writer& w, const flow::Match& match) {
  std::uint8_t bits = 0;
  if (match.flow.has_value()) bits |= kHasFlow;
  if (match.src_host.has_value()) bits |= kHasSrc;
  if (match.dst_host.has_value()) bits |= kHasDst;
  if (match.in_port.has_value()) bits |= kHasInPort;
  w.u8(bits);
  if (match.flow.has_value()) w.u64(*match.flow);
  if (match.src_host.has_value()) w.u32(*match.src_host);
  if (match.dst_host.has_value()) w.u32(*match.dst_host);
  if (match.in_port.has_value()) w.u32(*match.in_port);
}

Result<flow::Match> decode_match(Reader& r) {
  flow::Match match;
  const Result<std::uint8_t> bits = r.u8();
  if (!bits.ok()) return bits.error();
  if ((bits.value() & kHasFlow) != 0) {
    const Result<std::uint64_t> v = r.u64();
    if (!v.ok()) return v.error();
    match.flow = v.value();
  }
  if ((bits.value() & kHasSrc) != 0) {
    const Result<std::uint32_t> v = r.u32();
    if (!v.ok()) return v.error();
    match.src_host = v.value();
  }
  if ((bits.value() & kHasDst) != 0) {
    const Result<std::uint32_t> v = r.u32();
    if (!v.ok()) return v.error();
    match.dst_host = v.value();
  }
  if ((bits.value() & kHasInPort) != 0) {
    const Result<std::uint32_t> v = r.u32();
    if (!v.ok()) return v.error();
    match.in_port = v.value();
  }
  return match;
}

void encode_action(Writer& w, const flow::Action& action) {
  w.u8(static_cast<std::uint8_t>(action.kind));
  w.u32(action.port);
}

Result<flow::Action> decode_action(Reader& r) {
  const Result<std::uint8_t> kind = r.u8();
  if (!kind.ok()) return kind.error();
  if (kind.value() > static_cast<std::uint8_t>(flow::ActionKind::kDrop))
    return make_error(Errc::kParseError, "unknown action kind");
  const Result<std::uint32_t> port = r.u32();
  if (!port.ok()) return port.error();
  return flow::Action{static_cast<flow::ActionKind>(kind.value()),
                      port.value()};
}

// Appends one complete self-delimiting frame (header + body) to `w` at its
// current position. Batch elements recurse through this with the SAME
// writer, so a nested frame is laid down in place instead of round-tripping
// through a per-element temporary vector.
void encode_frame(Writer& w, const Message& message);

struct BodyEncoder {
  Writer& w;

  void operator()(const Hello&) const {}
  void operator()(const Error& e) const {
    w.u16(e.code);
    w.u16(static_cast<std::uint16_t>(e.text.size()));
    w.bytes(std::as_bytes(std::span(e.text.data(), e.text.size())));
  }
  void operator()(const Echo& e) const { w.bytes(e.payload); }
  void operator()(const FeaturesRequest&) const {}
  void operator()(const FeaturesReply& f) const {
    w.u64(f.datapath);
    w.u32(f.n_tables);
  }
  void operator()(const FlowMod& mod) const {
    w.u8(static_cast<std::uint8_t>(mod.command));
    w.u8(mod.table);
    w.u16(mod.priority);
    w.u64(mod.cookie);
    encode_match(w, mod.match);
    encode_action(w, mod.action);
  }
  void operator()(const PacketOut& p) const {
    w.u64(p.packet.flow);
    w.u32(p.packet.src_host);
    w.u32(p.packet.dst_host);
    w.u32(p.packet.in_port);
    w.u32(static_cast<std::uint32_t>(p.packet.ttl));
    w.u32(p.out_port);
  }
  void operator()(const BarrierRequest&) const {}
  void operator()(const BarrierReply&) const {}
  void operator()(const Batch& batch) const {
    TSU_ASSERT_MSG(batch.messages.size() <= 0xffff, "batch too large");
    w.u16(static_cast<std::uint16_t>(batch.messages.size()));
    // Each element is a full self-delimiting frame, encoded in place.
    for (const Message& m : batch.messages) {
      TSU_ASSERT_MSG(m.type() != MsgType::kBatch, "batch inside batch");
      encode_frame(w, m);
    }
  }
};

void encode_frame(Writer& w, const Message& message) {
  const std::size_t start = w.size();
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(message.type()));
  const std::size_t length_offset = w.size();
  w.u16(0);  // patched below
  w.u32(message.xid);
  std::visit(BodyEncoder{w}, message.body);
  const std::size_t frame_size = w.size() - start;
  TSU_ASSERT_MSG(frame_size <= kMaxFrame, "frame exceeds 64 KiB");
  w.patch_u16(length_offset, static_cast<std::uint16_t>(frame_size));
}

// `depth` guards batch nesting: a kBatch body at depth > 0 is rejected
// BEFORE its elements are decoded, so adversarial deeply-nested batch
// frames cannot recurse the decoder more than two levels.
Result<Message> decode_impl(std::span<const std::byte> data, int depth);
Result<DecodeStreamResult> decode_stream_impl(std::span<const std::byte> data,
                                              int depth);

Result<Body> decode_body(MsgType type, Reader& r, std::size_t body_size,
                         int depth) {
  switch (type) {
    case MsgType::kHello: return Body{Hello{}};
    case MsgType::kError: {
      const Result<std::uint16_t> code = r.u16();
      if (!code.ok()) return code.error();
      const Result<std::uint16_t> len = r.u16();
      if (!len.ok()) return len.error();
      const Result<std::span<const std::byte>> raw = r.bytes(len.value());
      if (!raw.ok()) return raw.error();
      std::string text(raw.value().size(), '\0');
      for (std::size_t i = 0; i < raw.value().size(); ++i)
        text[i] = static_cast<char>(raw.value()[i]);
      return Body{Error{code.value(), std::move(text)}};
    }
    case MsgType::kEchoRequest:
    case MsgType::kEchoReply: {
      // Echo's Message owns its payload past the frame buffer: copy.
      Result<std::vector<std::byte>> payload = r.bytes_copy(body_size);
      if (!payload.ok()) return payload.error();
      return Body{Echo{type == MsgType::kEchoReply,
                       std::move(payload).value()}};
    }
    case MsgType::kFeaturesRequest: return Body{FeaturesRequest{}};
    case MsgType::kFeaturesReply: {
      const Result<std::uint64_t> dp = r.u64();
      if (!dp.ok()) return dp.error();
      const Result<std::uint32_t> tables = r.u32();
      if (!tables.ok()) return tables.error();
      return Body{FeaturesReply{dp.value(), tables.value()}};
    }
    case MsgType::kFlowMod: {
      const Result<std::uint8_t> command = r.u8();
      if (!command.ok()) return command.error();
      if (command.value() != 0 && command.value() != 1 &&
          command.value() != 3 && command.value() != 4)
        return make_error(Errc::kParseError, "unknown FlowMod command");
      const Result<std::uint8_t> table = r.u8();
      if (!table.ok()) return table.error();
      const Result<std::uint16_t> priority = r.u16();
      if (!priority.ok()) return priority.error();
      const Result<std::uint64_t> cookie = r.u64();
      if (!cookie.ok()) return cookie.error();
      Result<flow::Match> match = decode_match(r);
      if (!match.ok()) return match.error();
      Result<flow::Action> action = decode_action(r);
      if (!action.ok()) return action.error();
      FlowMod mod;
      mod.command = static_cast<FlowModCommand>(command.value());
      mod.table = table.value();
      mod.priority = priority.value();
      mod.cookie = cookie.value();
      mod.match = std::move(match).value();
      mod.action = action.value();
      return Body{std::move(mod)};
    }
    case MsgType::kPacketOut: {
      PacketOut p;
      const Result<std::uint64_t> flow_id = r.u64();
      if (!flow_id.ok()) return flow_id.error();
      p.packet.flow = flow_id.value();
      const Result<std::uint32_t> src = r.u32();
      if (!src.ok()) return src.error();
      p.packet.src_host = src.value();
      const Result<std::uint32_t> dst = r.u32();
      if (!dst.ok()) return dst.error();
      p.packet.dst_host = dst.value();
      const Result<std::uint32_t> in_port = r.u32();
      if (!in_port.ok()) return in_port.error();
      p.packet.in_port = in_port.value();
      const Result<std::uint32_t> ttl = r.u32();
      if (!ttl.ok()) return ttl.error();
      p.packet.ttl = static_cast<int>(ttl.value());
      const Result<std::uint32_t> out_port = r.u32();
      if (!out_port.ok()) return out_port.error();
      p.out_port = out_port.value();
      return Body{std::move(p)};
    }
    case MsgType::kBarrierRequest: return Body{BarrierRequest{}};
    case MsgType::kBarrierReply: return Body{BarrierReply{}};
    case MsgType::kBatch: {
      if (depth > 0)
        return make_error(Errc::kParseError, "batch inside batch");
      const Result<std::uint16_t> count = r.u16();
      if (!count.ok()) return count.error();
      // Zero-copy: the element frames decode straight out of the batch
      // body's view; nothing retains the span past this call.
      const Result<std::span<const std::byte>> raw = r.bytes(r.remaining());
      if (!raw.ok()) return raw.error();
      // Elements are ordinary self-delimiting frames: reuse the streaming
      // decoder, then insist the declared count consumed the body exactly.
      Result<DecodeStreamResult> elements =
          decode_stream_impl(raw.value(), depth + 1);
      if (!elements.ok()) return elements.error();
      if (elements.value().consumed != raw.value().size() ||
          elements.value().messages.size() != count.value())
        return make_error(Errc::kParseError, "batch framing mismatch");
      return Body{Batch{std::move(elements).value().messages}};
    }
  }
  return make_error(Errc::kParseError, "unknown message type");
}

Result<Message> decode_impl(std::span<const std::byte> data, int depth) {
  Reader r(data);
  const Result<std::uint8_t> version = r.u8();
  if (!version.ok()) return version.error();
  if (version.value() != kProtocolVersion)
    return make_error(Errc::kParseError, "unsupported protocol version");
  const Result<std::uint8_t> type_raw = r.u8();
  if (!type_raw.ok()) return type_raw.error();
  switch (type_raw.value()) {
    case 0: case 1: case 2: case 3: case 5: case 6: case 13: case 14:
    case 20: case 21: case 22:
      break;
    default:
      return make_error(Errc::kParseError, "unknown message type");
  }
  const MsgType type = static_cast<MsgType>(type_raw.value());
  const Result<std::uint16_t> length = r.u16();
  if (!length.ok()) return length.error();
  if (length.value() < kHeaderSize)
    return make_error(Errc::kParseError, "length smaller than header");
  if (length.value() > data.size())
    return make_error(Errc::kOutOfRange, "frame truncated");
  const Result<std::uint32_t> xid = r.u32();
  if (!xid.ok()) return xid.error();

  const std::size_t body_size = length.value() - kHeaderSize;
  // Restrict the reader to the declared frame so a body cannot read into a
  // following frame.
  Reader body_reader(data.subspan(kHeaderSize, body_size));
  Result<Body> body = decode_body(type, body_reader, body_size, depth);
  if (!body.ok()) return body.error();
  if (body_reader.remaining() != 0)
    return make_error(Errc::kParseError, "trailing bytes in frame body");

  Message message;
  message.xid = xid.value();
  message.body = std::move(body).value();
  if (message.type() != type)
    return make_error(Errc::kParseError, "body/type mismatch");
  return message;
}

Result<DecodeStreamResult> decode_stream_impl(std::span<const std::byte> data,
                                              int depth) {
  DecodeStreamResult result;
  while (data.size() - result.consumed >= kHeaderSize) {
    const std::span<const std::byte> rest = data.subspan(result.consumed);
    const auto declared =
        static_cast<std::size_t>(static_cast<std::uint8_t>(rest[2])) << 8 |
        static_cast<std::size_t>(static_cast<std::uint8_t>(rest[3]));
    if (declared > rest.size()) break;  // incomplete frame; stop cleanly
    Result<Message> message = decode_impl(rest.subspan(0, declared), depth);
    if (!message.ok()) return message.error();
    result.messages.push_back(std::move(message).value());
    result.consumed += declared;
  }
  return result;
}

}  // namespace

std::vector<std::byte> encode(const Message& message) {
  Writer w;
  encode_frame(w, message);
  return std::move(w).take();
}

void encode_into(const Message& message, std::vector<std::byte>& out) {
  out.clear();
  Writer w(out);
  encode_frame(w, message);
}

namespace {

std::size_t match_size(const flow::Match& match) {
  std::size_t n = 1;  // presence bitmap
  if (match.flow.has_value()) n += 8;
  if (match.src_host.has_value()) n += 4;
  if (match.dst_host.has_value()) n += 4;
  if (match.in_port.has_value()) n += 4;
  return n;
}

// Mirrors BodyEncoder field for field; proto_test pins
// encoded_size(m) == encode(m).size() so the two cannot drift.
struct BodySizer {
  std::size_t operator()(const Hello&) const { return 0; }
  std::size_t operator()(const Error& e) const { return 4 + e.text.size(); }
  std::size_t operator()(const Echo& e) const { return e.payload.size(); }
  std::size_t operator()(const FeaturesRequest&) const { return 0; }
  std::size_t operator()(const FeaturesReply&) const { return 12; }
  std::size_t operator()(const FlowMod& mod) const {
    return 1 + 1 + 2 + 8 + match_size(mod.match) + 5;  // action: kind + port
  }
  std::size_t operator()(const PacketOut&) const { return 28; }
  std::size_t operator()(const BarrierRequest&) const { return 0; }
  std::size_t operator()(const BarrierReply&) const { return 0; }
  std::size_t operator()(const Batch& batch) const {
    std::size_t n = 2;  // element count
    for (const Message& m : batch.messages) n += encoded_size(m);
    return n;
  }
};

}  // namespace

std::size_t encoded_size(const Message& message) {
  return kHeaderSize + std::visit(BodySizer{}, message.body);
}

void patch_xid(std::span<std::byte> frame, std::uint32_t xid) noexcept {
  TSU_ASSERT_MSG(frame.size() >= kHeaderSize, "frame smaller than header");
  frame[4] = static_cast<std::byte>((xid >> 24) & 0xff);
  frame[5] = static_cast<std::byte>((xid >> 16) & 0xff);
  frame[6] = static_cast<std::byte>((xid >> 8) & 0xff);
  frame[7] = static_cast<std::byte>(xid & 0xff);
}

MsgType frame_type(std::span<const std::byte> frame) noexcept {
  TSU_ASSERT_MSG(frame.size() >= kHeaderSize, "frame smaller than header");
  return static_cast<MsgType>(frame[1]);
}

Result<Message> decode(std::span<const std::byte> data) {
  return decode_impl(data, 0);
}

Result<DecodeStreamResult> decode_stream(std::span<const std::byte> data) {
  return decode_stream_impl(data, 0);
}

}  // namespace tsu::proto
