#include "tsu/proto/messages.hpp"

#include <sstream>

#include "tsu/util/assert.hpp"

namespace tsu::proto {

const char* to_string(MsgType type) noexcept {
  switch (type) {
    case MsgType::kHello: return "HELLO";
    case MsgType::kError: return "ERROR";
    case MsgType::kEchoRequest: return "ECHO_REQUEST";
    case MsgType::kEchoReply: return "ECHO_REPLY";
    case MsgType::kFeaturesRequest: return "FEATURES_REQUEST";
    case MsgType::kFeaturesReply: return "FEATURES_REPLY";
    case MsgType::kPacketOut: return "PACKET_OUT";
    case MsgType::kFlowMod: return "FLOW_MOD";
    case MsgType::kBarrierRequest: return "BARRIER_REQUEST";
    case MsgType::kBarrierReply: return "BARRIER_REPLY";
    case MsgType::kBatch: return "BATCH";
  }
  return "?";
}

const char* to_string(FlowModCommand command) noexcept {
  switch (command) {
    case FlowModCommand::kAdd: return "ADD";
    case FlowModCommand::kModify: return "MODIFY";
    case FlowModCommand::kDelete: return "DELETE";
    case FlowModCommand::kDeleteStrict: return "DELETE_STRICT";
  }
  return "?";
}

namespace {

struct TypeVisitor {
  MsgType operator()(const Hello&) const { return MsgType::kHello; }
  MsgType operator()(const Error&) const { return MsgType::kError; }
  MsgType operator()(const Echo& e) const {
    return e.reply ? MsgType::kEchoReply : MsgType::kEchoRequest;
  }
  MsgType operator()(const FeaturesRequest&) const {
    return MsgType::kFeaturesRequest;
  }
  MsgType operator()(const FeaturesReply&) const {
    return MsgType::kFeaturesReply;
  }
  MsgType operator()(const FlowMod&) const { return MsgType::kFlowMod; }
  MsgType operator()(const PacketOut&) const { return MsgType::kPacketOut; }
  MsgType operator()(const BarrierRequest&) const {
    return MsgType::kBarrierRequest;
  }
  MsgType operator()(const BarrierReply&) const {
    return MsgType::kBarrierReply;
  }
  MsgType operator()(const Batch&) const { return MsgType::kBatch; }
};

}  // namespace

MsgType Message::type() const noexcept {
  return std::visit(TypeVisitor{}, body);
}

std::string Message::to_string() const {
  std::ostringstream out;
  out << proto::to_string(type()) << " xid=" << xid;
  if (const auto* mod = std::get_if<FlowMod>(&body)) {
    out << " " << proto::to_string(mod->command) << " prio=" << mod->priority
        << " " << mod->match.to_string() << " -> " << mod->action.to_string();
  } else if (const auto* batch = std::get_if<Batch>(&body)) {
    out << " n=" << batch->messages.size();
  }
  return out.str();
}

Message make_hello(Xid xid) { return Message{xid, Hello{}}; }

Message make_echo_request(Xid xid, std::vector<std::byte> payload) {
  return Message{xid, Echo{false, std::move(payload)}};
}

Message make_echo_reply(Xid xid, std::vector<std::byte> payload) {
  return Message{xid, Echo{true, std::move(payload)}};
}

Message make_barrier_request(Xid xid) {
  return Message{xid, BarrierRequest{}};
}

Message make_barrier_reply(Xid xid) { return Message{xid, BarrierReply{}}; }

Message make_flow_mod(Xid xid, FlowMod mod) {
  return Message{xid, std::move(mod)};
}

Message make_error(Xid xid, std::uint16_t code, std::string text) {
  return Message{xid, Error{code, std::move(text)}};
}

Message make_batch(Xid xid, std::vector<Message> messages) {
  for (const Message& m : messages)
    TSU_ASSERT_MSG(m.type() != MsgType::kBatch, "batch inside batch");
  return Message{xid, Batch{std::move(messages)}};
}

}  // namespace tsu::proto
