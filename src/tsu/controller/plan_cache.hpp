// Compile-once submission path: memoized update plans with pre-encoded,
// xid-patchable frames.
//
// The open-loop service mode submits the same few templates over and over
// (each template alternating forward/reverse), yet every submission used to
// re-lower the schedule to rounds, recompute the admission footprint and
// release plan, and re-encode every FlowMod and barrier frame from scratch.
// All of that work is a pure function of the template - only the xids and
// the arrival timestamp differ between submissions.
//
// A CompiledPlan captures the invariant part once: the canonical
// UpdateRequest (rounds and all), its admission Footprint, the per-round
// release plan, and every wire frame pre-encoded with xid 0 plus the
// per-round barrier fan-out order. Submitting a plan
// (Controller::submit_plan) then costs only xid assignment and per-switch
// routing: the channel copies the cached bytes into its pooled frame buffer
// and patches the live xid in place (proto::patch_xid - the xid analogue of
// the Batch encoder's length patch), producing bytes identical to a fresh
// encode.
//
// Transparency is the contract: a cache-on run is bit-identical to the
// cache-off run - same digests, same wire bytes, same makespan, same oracle
// verdicts. Two mechanisms guard it:
//   * eligibility - the pre-encoded send path is only taken when a frame
//     would be its own wire frame anyway (batching off) and no shadow-table
//     bookkeeping inspects the Message (fault tolerance off); otherwise the
//     plan still skips lowering/footprint/encoding recomputation but sends
//     through the ordinary Message path, which reads the plan's canonical
//     request and produces identical bytes;
//   * generation tagging - every plan records the controller's resync
//     generation at compile time. A fault-driven resync rewrites shadow
//     state and bumps the generation, so PlanCache::lookup discards any
//     plan compiled before it (counted as an invalidation) rather than
//     serving stale frames.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "tsu/controller/admission.hpp"
#include "tsu/controller/update_request.hpp"
#include "tsu/util/ids.hpp"

namespace tsu::controller {

// Everything about one update template that does not depend on the
// submission instant. Immutable after compile_plan (shared across
// submissions through shared_ptr<const CompiledPlan>).
struct CompiledPlan {
  // Offset/length of one pre-encoded frame inside `frames`.
  struct FrameRef {
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
  };

  // The canonical request: rounds, name, flow, interval. Per-submission
  // fields (priority_class, enqueued) are left at their defaults and
  // carried by the submission itself.
  UpdateRequest request;
  // Admission footprint, identical to Footprint::of(request).
  Footprint footprint;
  // Per-round footprint release slices (admission_release = round),
  // identical to round_release_plan(request).
  std::vector<std::vector<RuleRef>> release_plan;
  // Unique switches the request touches, in first-appearance order; the
  // sharded coordinator routes plan submissions by this set without
  // materializing a request.
  std::vector<NodeId> touched;
  // Flat pool of pre-encoded FlowMod frames (xid 0), indexed per
  // round/op by `flow_mod_frames`.
  std::vector<std::byte> frames;
  std::vector<std::vector<FrameRef>> flow_mod_frames;
  // One pre-encoded BarrierRequest frame (xid 0); barriers are
  // payload-free, so every round shares it.
  std::vector<std::byte> barrier;
  // Per-round barrier fan-out targets, captured at compile time by
  // replaying the engine's per-round switch-set construction - same
  // switches, same iteration order as the uncached path.
  std::vector<std::vector<NodeId>> barrier_order;
  // Controller resync generation at compile time; lookup() rejects plans
  // from older generations.
  std::uint64_t generation = 0;

  std::span<const std::byte> flow_mod_frame(std::size_t round,
                                            std::size_t op) const noexcept {
    const FrameRef& ref = flow_mod_frames[round][op];
    return std::span<const std::byte>(frames).subspan(ref.offset, ref.length);
  }
  std::span<const std::byte> barrier_frame() const noexcept {
    return barrier;
  }
};

// Keys every footprint rule by the LAST round touching it: once that
// round's barriers return, no later round of the request can write the rule
// again, so its admission entry is safe to release early. Shared by the
// controller's per-round release (admission_release = round) and
// compile_plan, which bakes the result into the plan.
std::vector<std::vector<RuleRef>> round_release_plan(
    const UpdateRequest& request);

// Compiles `request` into an immutable plan: footprint, release plan,
// touched set, and every wire frame encoded once with xid 0.
std::shared_ptr<const CompiledPlan> compile_plan(UpdateRequest request,
                                                 std::uint64_t generation);

// The memo: template key -> compiled plan, with hit/compile/invalidation
// counters surfaced through ServiceStats. Keys are the caller's (the
// service executor derives one per (template, direction) from the update
// instance's identity digest), so the cache itself never inspects requests.
class PlanCache {
 public:
  // Returns the cached plan for `key` if it exists and was compiled at
  // `generation`; a generation mismatch (fault-driven resync since
  // compile) discards the stale plan and counts an invalidation. A miss
  // returns nullptr - the caller compiles and store()s.
  std::shared_ptr<const CompiledPlan> lookup(std::uint64_t key,
                                             std::uint64_t generation) {
    const auto it = plans_.find(key);
    if (it == plans_.end()) return nullptr;
    if (it->second->generation != generation) {
      ++invalidations_;
      plans_.erase(it);
      return nullptr;
    }
    ++hits_;
    return it->second;
  }

  void store(std::uint64_t key, std::shared_ptr<const CompiledPlan> plan) {
    ++compiles_;
    plans_[key] = std::move(plan);
  }

  std::uint64_t hits() const noexcept { return hits_; }
  // Misses that compiled a fresh plan (every invalidation is followed by
  // one, so misses == compiles).
  std::uint64_t compiles() const noexcept { return compiles_; }
  std::uint64_t invalidations() const noexcept { return invalidations_; }
  std::size_t size() const noexcept { return plans_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::shared_ptr<const CompiledPlan>>
      plans_;
  std::uint64_t hits_ = 0;
  std::uint64_t compiles_ = 0;
  std::uint64_t invalidations_ = 0;
};

}  // namespace tsu::controller
