#include "tsu/controller/admission.hpp"

#include <algorithm>

#include "tsu/util/assert.hpp"

namespace tsu::controller {

const char* to_string(AdmissionPolicy policy) noexcept {
  switch (policy) {
    case AdmissionPolicy::kBlind: return "blind";
    case AdmissionPolicy::kConflictAware: return "conflict_aware";
    case AdmissionPolicy::kSerialize: return "serialize";
  }
  return "?";
}

std::optional<AdmissionPolicy> admission_policy_from_string(
    std::string_view name) noexcept {
  if (name == "blind") return AdmissionPolicy::kBlind;
  if (name == "conflict_aware") return AdmissionPolicy::kConflictAware;
  if (name == "serialize") return AdmissionPolicy::kSerialize;
  return std::nullopt;
}

Footprint Footprint::of(const UpdateRequest& request) {
  Footprint footprint;
  for (const std::vector<RoundOp>& round : request.rounds)
    for (const RoundOp& op : round)
      footprint.add(RuleRef{op.node, op.mod.table, op.mod.match});
  return footprint;
}

void Footprint::add(RuleRef ref) {
  if (std::find(rules_.begin(), rules_.end(), ref) != rules_.end()) return;
  rules_.push_back(std::move(ref));
}

void Footprint::remove(const RuleRef& ref) {
  const auto it = std::find(rules_.begin(), rules_.end(), ref);
  if (it != rules_.end()) rules_.erase(it);
}

bool Footprint::conflicts_with(const Footprint& other) const noexcept {
  for (const RuleRef& mine : rules_)
    for (const RuleRef& theirs : other.rules_)
      if (mine.conflicts_with(theirs)) return true;
  return false;
}

bool AdmissionQueue::submit(Id id, Footprint footprint) {
  TSU_ASSERT_MSG(entries_.find(id) == entries_.end(),
                 "admission id submitted twice");
  Entry entry;
  entry.seq = next_seq_++;

  switch (policy_) {
    case AdmissionPolicy::kBlind:
      break;  // no edges: capacity is the only gate
    case AdmissionPolicy::kSerialize:
      // The paper's message queue: wait for every earlier live request.
      for (auto& [other_id, other] : entries_) {
        entry.blocked_on.insert(other_id);
        other.blocks.push_back(id);
        ++conflict_edges_;
      }
      break;
    case AdmissionPolicy::kConflictAware:
      // Rule-level dependency tracking: consult only rules co-located on
      // the switches this footprint touches.
      for (const RuleRef& rule : footprint.rules()) {
        const auto bucket = by_node_.find(rule.node);
        if (bucket == by_node_.end()) continue;
        for (const auto& [other_id, other_rule] : bucket->second) {
          if (!rule.conflicts_with(other_rule)) continue;
          if (entry.blocked_on.insert(other_id).second) {
            entries_.at(other_id).blocks.push_back(id);
            ++conflict_edges_;
          }
        }
      }
      break;
  }

  // Only conflict-aware admission ever consults the rule index; skip the
  // bookkeeping (and its Match copies) for the other policies.
  if (policy_ == AdmissionPolicy::kConflictAware)
    for (const RuleRef& rule : footprint.rules())
      by_node_[rule.node].emplace_back(id, rule);

  const bool admitted = entry.blocked_on.empty();
  if (!admitted) ++blocked_submissions_;
  entry.footprint = std::move(footprint);
  entries_.emplace(id, std::move(entry));
  return admitted;
}

bool AdmissionQueue::admissible(Id id) const noexcept {
  const auto it = entries_.find(id);
  return it != entries_.end() && it->second.blocked_on.empty();
}

std::vector<AdmissionQueue::Id> AdmissionQueue::release(Id id) {
  const auto it = entries_.find(id);
  TSU_ASSERT_MSG(it != entries_.end(), "release of unknown admission id");

  // Drop this request's rules from the per-switch index (only populated
  // under conflict-aware admission).
  if (policy_ == AdmissionPolicy::kConflictAware) {
    for (const RuleRef& rule : it->second.footprint.rules()) {
      const auto bucket = by_node_.find(rule.node);
      if (bucket == by_node_.end()) continue;
      auto& entries = bucket->second;
      entries.erase(
          std::remove_if(entries.begin(), entries.end(),
                         [id](const auto& e) { return e.first == id; }),
          entries.end());
      if (entries.empty()) by_node_.erase(bucket);
    }
  }

  std::vector<Id> unblocked;
  for (const Id waiter : it->second.blocks) {
    const auto waiter_it = entries_.find(waiter);
    if (waiter_it == entries_.end()) continue;  // already released
    Entry& entry = waiter_it->second;
    if (entry.blocked_on.erase(id) == 1 && entry.blocked_on.empty())
      unblocked.push_back(waiter);
  }
  entries_.erase(it);

  std::sort(unblocked.begin(), unblocked.end(),
            [this](Id a, Id b) {
              return entries_.at(a).seq < entries_.at(b).seq;
            });
  return unblocked;
}

std::vector<AdmissionQueue::Id> AdmissionQueue::release_rules(
    Id id, const std::vector<RuleRef>& rules) {
  if (policy_ != AdmissionPolicy::kConflictAware || rules.empty()) return {};
  const auto it = entries_.find(id);
  TSU_ASSERT_MSG(it != entries_.end(), "release_rules of unknown admission id");
  Entry& entry = it->second;

  for (const RuleRef& rule : rules) {
    entry.footprint.remove(rule);
    const auto bucket = by_node_.find(rule.node);
    if (bucket == by_node_.end()) continue;
    auto& index = bucket->second;
    index.erase(std::remove_if(index.begin(), index.end(),
                               [&](const auto& e) {
                                 return e.first == id && e.second == rule;
                               }),
                index.end());
    if (index.empty()) by_node_.erase(bucket);
  }

  // Waiters blocked on this request may only have conflicted with the
  // released rules; re-check each against the shrunken footprint. The
  // blocks list keeps stale entries (harmless: release() tolerates
  // already-dropped edges via the erase-count guard).
  std::vector<Id> unblocked;
  for (const Id waiter : entry.blocks) {
    const auto waiter_it = entries_.find(waiter);
    if (waiter_it == entries_.end()) continue;
    Entry& waiting = waiter_it->second;
    if (waiting.blocked_on.find(id) == waiting.blocked_on.end()) continue;
    if (waiting.footprint.conflicts_with(entry.footprint)) continue;
    waiting.blocked_on.erase(id);
    if (waiting.blocked_on.empty()) unblocked.push_back(waiter);
  }

  std::sort(unblocked.begin(), unblocked.end(),
            [this](Id a, Id b) {
              return entries_.at(a).seq < entries_.at(b).seq;
            });
  return unblocked;
}

std::size_t AdmissionQueue::blocked() const noexcept {
  std::size_t count = 0;
  for (const auto& [id, entry] : entries_)
    if (!entry.blocked_on.empty()) ++count;
  return count;
}

}  // namespace tsu::controller
