#include "tsu/controller/admission.hpp"

#include <algorithm>

#include "tsu/util/assert.hpp"

namespace tsu::controller {

const char* to_string(AdmissionPolicy policy) noexcept {
  switch (policy) {
    case AdmissionPolicy::kBlind: return "blind";
    case AdmissionPolicy::kConflictAware: return "conflict_aware";
    case AdmissionPolicy::kSerialize: return "serialize";
  }
  return "?";
}

std::optional<AdmissionPolicy> admission_policy_from_string(
    std::string_view name) noexcept {
  if (name == "blind") return AdmissionPolicy::kBlind;
  if (name == "conflict_aware") return AdmissionPolicy::kConflictAware;
  if (name == "serialize") return AdmissionPolicy::kSerialize;
  return std::nullopt;
}

Footprint Footprint::of(const UpdateRequest& request) {
  Footprint footprint;
  for (const std::vector<RoundOp>& round : request.rounds)
    for (const RoundOp& op : round)
      footprint.add(RuleRef{op.node, op.mod.table, op.mod.match});
  return footprint;
}

void Footprint::add(RuleRef ref) {
  if (std::find(rules_.begin(), rules_.end(), ref) != rules_.end()) return;
  rules_.push_back(std::move(ref));
}

void Footprint::remove(const RuleRef& ref) {
  const auto it = std::find(rules_.begin(), rules_.end(), ref);
  if (it != rules_.end()) rules_.erase(it);
}

bool Footprint::conflicts_with(const Footprint& other) const noexcept {
  for (const RuleRef& mine : rules_)
    for (const RuleRef& theirs : other.rules_)
      if (mine.conflicts_with(theirs)) return true;
  return false;
}

namespace {

bool contains(const std::vector<AdmissionQueue::Id>& ids,
              AdmissionQueue::Id id) noexcept {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

// Removes one occurrence (order is irrelevant: blocked_on is a set in
// spirit). Returns whether anything was erased.
bool erase_one(std::vector<AdmissionQueue::Id>& ids,
               AdmissionQueue::Id id) noexcept {
  const auto it = std::find(ids.begin(), ids.end(), id);
  if (it == ids.end()) return false;
  *it = ids.back();
  ids.pop_back();
  return true;
}

// Smallest power of two >= n (min 8): the headroom factor that turns
// capacity records into doubling events.
std::size_t headroom(std::size_t n) noexcept {
  std::size_t cap = 8;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

void AdmissionQueue::reserve_bucket_record(std::size_t needed) {
  if (needed <= bucket_reserve_) return;
  bucket_reserve_ = headroom(needed);
  for (auto& [node_id, bucket] : by_node_) bucket.reserve(bucket_reserve_);
  for (auto& node : bucket_pool_) node.mapped().reserve(bucket_reserve_);
}

void AdmissionQueue::reserve_edge_record(std::size_t needed) {
  if (needed <= edge_reserve_) return;
  edge_reserve_ = headroom(needed);
  for (auto& [entry_id, entry] : entries_) {
    entry.blocked_on.reserve(edge_reserve_);
    entry.blocks.reserve(edge_reserve_);
  }
  for (auto& node : entry_pool_) {
    node.mapped().blocked_on.reserve(edge_reserve_);
    node.mapped().blocks.reserve(edge_reserve_);
  }
}

AdmissionQueue::Entry& AdmissionQueue::insert_entry(Id id) {
  if (entry_pool_.empty()) {
    Entry& fresh = entries_.emplace(id, Entry{}).first->second;
    // A fresh entry means a live-count record (itself an allocation). An
    // entry's edge lists can never outgrow the live count (every edge
    // names a distinct live peer), so raising the edge reserve here - and
    // only here - pins all edge growth to these warmup-ramp moments.
    reserve_edge_record(entries_.size());
    fresh.footprint.reserve(footprint_high_water_);
    fresh.blocked_on.reserve(edge_reserve_);
    fresh.blocks.reserve(edge_reserve_);
    return fresh;
  }
  EntryMap::node_type node = std::move(entry_pool_.back());
  entry_pool_.pop_back();
  node.key() = id;
  return entries_.insert(std::move(node)).position->second;
}

AdmissionQueue::Bucket& AdmissionQueue::insert_bucket(NodeId node_id) {
  if (bucket_pool_.empty()) {
    Bucket& fresh = by_node_.emplace(node_id, Bucket{}).first->second;
    fresh.reserve(bucket_reserve_);
    return fresh;
  }
  BucketMap::node_type node = std::move(bucket_pool_.back());
  bucket_pool_.pop_back();
  node.key() = node_id;
  return by_node_.insert(std::move(node)).position->second;
}

void AdmissionQueue::recycle_entry(EntryMap::iterator it) {
  EntryMap::node_type node = entries_.extract(it);
  // Clear in place: the vectors (and the footprint's, via copy-assign on
  // reuse) keep their high-water capacity for the next occupant.
  node.mapped().blocked_on.clear();
  node.mapped().blocks.clear();
  entry_pool_.push_back(std::move(node));
}

void AdmissionQueue::recycle_bucket(BucketMap::iterator it) {
  BucketMap::node_type node = by_node_.extract(it);
  node.mapped().clear();
  bucket_pool_.push_back(std::move(node));
}

bool AdmissionQueue::submit(Id id, const Footprint& footprint) {
  TSU_ASSERT_MSG(entries_.find(id) == entries_.end(),
                 "admission id submitted twice");
  if (footprint.size() > footprint_high_water_) {
    // A footprint larger than anything seen before: a cold event (first
    // submission of a template, when the plan compiles anyway). Grow every
    // entry - live and pooled - now, so no warm copy-assign below ever has
    // to: otherwise a rarely-reused deep-pool entry could reallocate
    // arbitrarily late, breaking the zero-allocation steady state.
    footprint_high_water_ = footprint.size();
    for (auto& [entry_id, live] : entries_)
      live.footprint.reserve(footprint_high_water_);
    for (auto& node : entry_pool_)
      node.mapped().footprint.reserve(footprint_high_water_);
  }
  Entry& entry = insert_entry(id);
  entry.seq = next_seq_++;
  entry.footprint = footprint;  // copy-assign: pooled capacity reused

  switch (policy_) {
    case AdmissionPolicy::kBlind:
      break;  // no edges: capacity is the only gate
    case AdmissionPolicy::kSerialize:
      // The paper's message queue: wait for every earlier live request.
      for (auto& [other_id, other] : entries_) {
        if (other_id == id) continue;
        reserve_edge_record(entry.blocked_on.size() + 1);
        reserve_edge_record(other.blocks.size() + 1);
        entry.blocked_on.push_back(other_id);
        other.blocks.push_back(id);
        ++conflict_edges_;
      }
      break;
    case AdmissionPolicy::kConflictAware:
      // Rule-level dependency tracking: consult only rules co-located on
      // the switches this footprint touches. The entry is already in the
      // map but its rules are not yet in the index, so it never sees
      // itself as a conflict.
      for (const RuleRef& rule : footprint.rules()) {
        const auto bucket = by_node_.find(rule.node);
        if (bucket == by_node_.end()) continue;
        for (const auto& [other_id, other_rule] : bucket->second) {
          if (!rule.conflicts_with(other_rule)) continue;
          if (!contains(entry.blocked_on, other_id)) {
            Entry& blocker = entries_.at(other_id);
            reserve_edge_record(entry.blocked_on.size() + 1);
            reserve_edge_record(blocker.blocks.size() + 1);
            entry.blocked_on.push_back(other_id);
            blocker.blocks.push_back(id);
            ++conflict_edges_;
          }
        }
      }
      break;
  }

  // Only conflict-aware admission ever consults the rule index; skip the
  // bookkeeping (and its Match copies) for the other policies.
  if (policy_ == AdmissionPolicy::kConflictAware)
    for (const RuleRef& rule : footprint.rules()) {
      auto bucket = by_node_.find(rule.node);
      Bucket& rules =
          bucket == by_node_.end() ? insert_bucket(rule.node) : bucket->second;
      reserve_bucket_record(rules.size() + 1);
      rules.emplace_back(id, rule);
    }

  const bool admitted = entry.blocked_on.empty();
  if (!admitted) ++blocked_submissions_;
  return admitted;
}

bool AdmissionQueue::admissible(Id id) const noexcept {
  const auto it = entries_.find(id);
  return it != entries_.end() && it->second.blocked_on.empty();
}

const std::vector<AdmissionQueue::Id>& AdmissionQueue::release(Id id) {
  const auto it = entries_.find(id);
  TSU_ASSERT_MSG(it != entries_.end(), "release of unknown admission id");

  // Drop this request's rules from the per-switch index (only populated
  // under conflict-aware admission).
  if (policy_ == AdmissionPolicy::kConflictAware) {
    for (const RuleRef& rule : it->second.footprint.rules()) {
      const auto bucket = by_node_.find(rule.node);
      if (bucket == by_node_.end()) continue;
      auto& entries = bucket->second;
      entries.erase(
          std::remove_if(entries.begin(), entries.end(),
                         [id](const auto& e) { return e.first == id; }),
          entries.end());
      if (entries.empty()) recycle_bucket(bucket);
    }
  }

  unblocked_scratch_.clear();
  for (const Id waiter : it->second.blocks) {
    const auto waiter_it = entries_.find(waiter);
    if (waiter_it == entries_.end()) continue;  // already released
    Entry& entry = waiter_it->second;
    if (erase_one(entry.blocked_on, id) && entry.blocked_on.empty())
      unblocked_scratch_.push_back(waiter);
  }
  recycle_entry(it);

  std::sort(unblocked_scratch_.begin(), unblocked_scratch_.end(),
            [this](Id a, Id b) {
              return entries_.at(a).seq < entries_.at(b).seq;
            });
  return unblocked_scratch_;
}

const std::vector<AdmissionQueue::Id>& AdmissionQueue::release_rules(
    Id id, const std::vector<RuleRef>& rules) {
  unblocked_scratch_.clear();
  if (policy_ != AdmissionPolicy::kConflictAware || rules.empty())
    return unblocked_scratch_;
  const auto it = entries_.find(id);
  TSU_ASSERT_MSG(it != entries_.end(), "release_rules of unknown admission id");
  Entry& entry = it->second;

  for (const RuleRef& rule : rules) {
    entry.footprint.remove(rule);
    const auto bucket = by_node_.find(rule.node);
    if (bucket == by_node_.end()) continue;
    auto& index = bucket->second;
    index.erase(std::remove_if(index.begin(), index.end(),
                               [&](const auto& e) {
                                 return e.first == id && e.second == rule;
                               }),
                index.end());
    if (index.empty()) recycle_bucket(bucket);
  }

  // Waiters blocked on this request may only have conflicted with the
  // released rules; re-check each against the shrunken footprint. The
  // blocks list keeps stale entries (harmless: release() tolerates
  // already-dropped edges via the erase guard).
  for (const Id waiter : entry.blocks) {
    const auto waiter_it = entries_.find(waiter);
    if (waiter_it == entries_.end()) continue;
    Entry& waiting = waiter_it->second;
    if (!contains(waiting.blocked_on, id)) continue;
    if (waiting.footprint.conflicts_with(entry.footprint)) continue;
    erase_one(waiting.blocked_on, id);
    if (waiting.blocked_on.empty()) unblocked_scratch_.push_back(waiter);
  }

  std::sort(unblocked_scratch_.begin(), unblocked_scratch_.end(),
            [this](Id a, Id b) {
              return entries_.at(a).seq < entries_.at(b).seq;
            });
  return unblocked_scratch_;
}

std::size_t AdmissionQueue::blocked() const noexcept {
  std::size_t count = 0;
  for (const auto& [id, entry] : entries_)
    if (!entry.blocked_on.empty()) ++count;
  return count;
}

}  // namespace tsu::controller
