// Conflict-aware admission for the concurrent update engine.
//
// PR 1's `max_in_flight` admits blindly: two in-flight updates whose
// FlowMods touch overlapping rules can race on rule installs - exactly the
// transient-violation window the paper exists to close. The cure is
// rule-level dependency tracking: every UpdateRequest has a *footprint*,
// the set of (switch, table, match) triples its FlowMods touch across all
// rounds, and a request is admitted the moment its footprint no longer
// overlaps anything live. Overlapping updates queue behind their conflicts
// instead of either racing or serializing globally.
//
// The AdmissionQueue maintains a dependency DAG over live (pending or
// in-flight) requests: on submit, a request gains a blocked-on edge to
// every *earlier* live request it conflicts with, so edges always point
// backwards in arrival order - the graph is acyclic by construction and the
// earliest live request is always admissible (liveness). Releasing a
// finished request erases its edges; requests whose blocked-on set drains
// become admissible in arrival order.
//
// Three policies:
//   kBlind        - no conflict edges; pure max_in_flight (PR 1 behaviour).
//   kConflictAware- edges exactly where rule footprints overlap.
//   kSerialize    - every request blocks on every earlier one: the paper's
//                   strictly serializing message queue, as a special case.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "tsu/controller/update_request.hpp"
#include "tsu/flow/match.hpp"
#include "tsu/util/ids.hpp"

namespace tsu::controller {

enum class AdmissionPolicy : std::uint8_t {
  kBlind = 0,
  kConflictAware = 1,
  kSerialize = 2,
};

const char* to_string(AdmissionPolicy policy) noexcept;
std::optional<AdmissionPolicy> admission_policy_from_string(
    std::string_view name) noexcept;

// One rule a request touches: a switch's table slot filtered by a match.
struct RuleRef {
  NodeId node = kInvalidNode;
  std::uint8_t table = 0;
  flow::Match match;

  // Same switch, same table, intersecting matches.
  bool conflicts_with(const RuleRef& other) const noexcept {
    return node == other.node && table == other.table &&
           match.overlaps(other.match);
  }
  bool operator==(const RuleRef&) const = default;
};

// The touched-rule set of one UpdateRequest, deduplicated.
class Footprint {
 public:
  // Collects (node, table, match) over every round's FlowMods, including
  // the cleanup deletes. A merged multi-policy request's footprint covers
  // every member policy.
  static Footprint of(const UpdateRequest& request);

  void add(RuleRef ref);
  // Drops one rule (no-op when absent): per-round footprint release
  // shrinks a live request's footprint as rounds retire.
  void remove(const RuleRef& ref);
  // Pre-grows rule storage (never shrinks): the admission queue reserves
  // pooled entries to its high-water footprint size so warm-path
  // copy-assignment never reallocates.
  void reserve(std::size_t rules) { rules_.reserve(rules); }

  bool conflicts_with(const Footprint& other) const noexcept;

  const std::vector<RuleRef>& rules() const noexcept { return rules_; }
  std::size_t size() const noexcept { return rules_.size(); }
  bool empty() const noexcept { return rules_.empty(); }

 private:
  std::vector<RuleRef> rules_;
};

// The dependency DAG. Ids are the caller's (the controller uses its
// UpdateIds); arrival order is submission order.
class AdmissionQueue {
 public:
  using Id = std::uint64_t;

  explicit AdmissionQueue(AdmissionPolicy policy = AdmissionPolicy::kBlind)
      : policy_(policy) {}

  AdmissionPolicy policy() const noexcept { return policy_; }

  // Registers a live request. Returns true when it is immediately
  // admissible (conflicts with nothing live under the policy). The
  // footprint is copied into pooled per-entry storage, so a caller
  // resubmitting a cached plan's immutable footprint allocates nothing
  // once the pool is warm.
  bool submit(Id id, const Footprint& footprint);

  // True when the request's blocked-on set is empty. The caller still
  // gates actual starts on its own capacity (max_in_flight).
  bool admissible(Id id) const noexcept;

  // True when the request currently carries any conflict edge - it waits
  // on an earlier live request or a later one waits on it. The complement
  // (live and edge-free) is the DAG-proven-disjoint set the speculative
  // round release keys on: such a request can confirm rounds without the
  // pacing barrier because no live footprint can observe its rules.
  // `blocks` may hold stale ids of already-released waiters, so the check
  // is conservative: a stale edge only disables speculation, never enables
  // it. Unknown ids report contended (never speculate on what the DAG
  // cannot vouch for).
  bool contended(Id id) const noexcept {
    const auto it = entries_.find(id);
    if (it == entries_.end()) return true;
    return !it->second.blocked_on.empty() || !it->second.blocks.empty();
  }

  // Removes a finished (or started-and-finished) request from the graph.
  // Returns the ids that became admissible, in arrival order. The returned
  // reference aliases a member scratch vector: it is valid until the next
  // submit/release/release_rules call (callers that recurse must copy).
  const std::vector<Id>& release(Id id);

  // Finer-grained release (admission_release = round): drops only `rules`
  // from a live request's footprint - rules its remaining rounds will
  // never touch again - and re-checks the requests blocked on it against
  // the shrunken footprint. Returns the ids that became admissible, in
  // arrival order (same scratch-aliasing contract as release). Only
  // meaningful under kConflictAware (the other policies track no
  // footprints); a later release(id) finishes the job.
  const std::vector<Id>& release_rules(Id id,
                                       const std::vector<RuleRef>& rules);

  std::size_t live() const noexcept { return entries_.size(); }
  // Live requests currently blocked on at least one conflict.
  std::size_t blocked() const noexcept;

  // Rule-index observability, for pinning steady-state boundedness: the
  // number of switch buckets in the index and the total (request, rule)
  // pairs across them. Buckets are erased as their last rule releases
  // (release / release_rules prune empty buckets), so both must return to
  // 0 whenever no request is live - a long-running admission_test case and
  // Controller::steady_state_entries() hold the line.
  std::size_t index_switches() const noexcept { return by_node_.size(); }
  std::size_t index_rules() const noexcept {
    std::size_t rules = 0;
    for (const auto& [node, bucket] : by_node_) rules += bucket.size();
    return rules;
  }

  // Total dependency edges ever created (a measure of workload conflict).
  std::uint64_t conflict_edges() const noexcept { return conflict_edges_; }
  // Submissions that entered the queue blocked.
  std::uint64_t blocked_submissions() const noexcept {
    return blocked_submissions_;
  }

 private:
  struct Entry {
    std::uint64_t seq = 0;  // arrival order
    Footprint footprint;
    // Earlier live conflicting requests (unique; small, so a flat vector
    // beats a node-per-element set and keeps its capacity across reuse).
    std::vector<Id> blocked_on;
    std::vector<Id> blocks;  // later requests waiting on this one
  };

  using EntryMap = std::unordered_map<Id, Entry>;
  using Bucket = std::vector<std::pair<Id, RuleRef>>;
  using BucketMap = std::unordered_map<NodeId, Bucket>;

  // Node-handle pools: released map nodes are extracted (so live-size
  // contracts like index_switches()==0 still hold) and stashed for the
  // next submit, making steady-state submit/release churn allocation-free
  // once every container hits its high-water capacity.
  Entry& insert_entry(Id id);
  Bucket& insert_bucket(NodeId node);
  void recycle_entry(EntryMap::iterator it);
  void recycle_bucket(BucketMap::iterator it);

  AdmissionPolicy policy_;
  EntryMap entries_;
  // Rule index: per switch, the live requests' rules on it, so conflict
  // detection touches only co-located rules instead of every live pair.
  BucketMap by_node_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t conflict_edges_ = 0;
  std::uint64_t blocked_submissions_ = 0;
  // Largest footprint ever submitted. When it rises (a template seen for
  // the first time - the same cold moment a plan compiles), every entry's
  // footprint storage is grown to match, so the steady state never meets a
  // pooled entry whose capacity lags the workload.
  std::size_t footprint_high_water_ = 0;
  // Capacity records for the rule index and the dependency-edge lists,
  // propagated to every peer container (live and pooled) with
  // next-power-of-two headroom the moment any one of them sets a record.
  // Per-container lazy growth would let a rarely-reused pooled bucket or a
  // rare co-location spike allocate arbitrarily deep into a run; shared
  // geometric records allocate only when the workload's global high-water
  // doubles, which a stationary workload does finitely often, all during
  // warmup. See reserve_bucket_record / reserve_edge_record.
  std::size_t bucket_reserve_ = 0;
  std::size_t edge_reserve_ = 0;

  void reserve_bucket_record(std::size_t needed);
  void reserve_edge_record(std::size_t needed);

  std::vector<EntryMap::node_type> entry_pool_;
  std::vector<BucketMap::node_type> bucket_pool_;
  std::vector<Id> unblocked_scratch_;
};

}  // namespace tsu::controller
