#include "tsu/controller/plan_cache.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "tsu/proto/codec.hpp"

namespace tsu::controller {

std::vector<std::vector<RuleRef>> round_release_plan(
    const UpdateRequest& request) {
  std::vector<std::vector<RuleRef>> plan(request.rounds.size());
  std::vector<std::pair<RuleRef, std::size_t>> last;
  for (std::size_t r = 0; r < request.rounds.size(); ++r) {
    for (const RoundOp& op : request.rounds[r]) {
      RuleRef ref{op.node, op.mod.table, op.mod.match};
      const auto it =
          std::find_if(last.begin(), last.end(),
                       [&](const auto& e) { return e.first == ref; });
      if (it == last.end())
        last.emplace_back(std::move(ref), r);
      else
        it->second = r;
    }
  }
  for (auto& [ref, round] : last) plan[round].push_back(std::move(ref));
  return plan;
}

std::shared_ptr<const CompiledPlan> compile_plan(UpdateRequest request,
                                                 std::uint64_t generation) {
  auto plan = std::make_shared<CompiledPlan>();
  plan->generation = generation;
  plan->request = std::move(request);
  const UpdateRequest& req = plan->request;

  plan->footprint = Footprint::of(req);
  plan->release_plan = round_release_plan(req);

  std::vector<std::byte> scratch;
  plan->flow_mod_frames.resize(req.rounds.size());
  plan->barrier_order.resize(req.rounds.size());
  for (std::size_t r = 0; r < req.rounds.size(); ++r) {
    const std::vector<RoundOp>& ops = req.rounds[r];
    std::vector<CompiledPlan::FrameRef>& row = plan->flow_mod_frames[r];
    row.reserve(ops.size());
    for (const RoundOp& op : ops) {
      // Encode with xid 0; send patches the live xid into the pooled copy
      // (proto::patch_xid), yielding bytes identical to a fresh encode.
      proto::encode_into(proto::make_flow_mod(0, op.mod), scratch);
      CompiledPlan::FrameRef ref;
      ref.offset = static_cast<std::uint32_t>(plan->frames.size());
      ref.length = static_cast<std::uint32_t>(scratch.size());
      plan->frames.insert(plan->frames.end(), scratch.begin(), scratch.end());
      row.push_back(ref);
      if (std::find(plan->touched.begin(), plan->touched.end(), op.node) ==
          plan->touched.end())
        plan->touched.push_back(op.node);
    }
    // Replay of the engine's per-round barrier fan-out: a fresh
    // unordered_set fed the same insertion sequence iterates in the same
    // order, so the compiled target list preserves the exact barrier send
    // order the uncached path would produce - a load-bearing detail for
    // bit-identical xid assignment and channel RNG consumption.
    std::unordered_set<NodeId> round_switches;
    for (const RoundOp& op : ops) round_switches.insert(op.node);
    std::vector<NodeId>& order = plan->barrier_order[r];
    order.reserve(round_switches.size());
    for (const NodeId node : round_switches) order.push_back(node);
  }
  proto::encode_into(proto::make_barrier_request(0), plan->barrier);
  return plan;
}

}  // namespace tsu::controller
