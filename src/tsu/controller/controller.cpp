#include "tsu/controller/controller.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "tsu/proto/apply.hpp"
#include "tsu/proto/codec.hpp"
#include "tsu/util/log.hpp"

namespace tsu::controller {

namespace {

// Keep batch frames comfortably below the codec's 64 KiB frame cap: a
// flush splits its outbox into chunks bounded by the shared message bound
// (proto::kMaxBatchMessages) and this byte budget.
constexpr std::size_t kMaxBatchBytes = 48 * 1024;

// kAdaptive: the hold window grows linearly with queue pressure (in-flight
// plus queued updates) and reaches the full batch_window here.
constexpr std::size_t kAdaptiveSaturation = 8;

}  // namespace

const char* to_string(BatchMode mode) noexcept {
  switch (mode) {
    case BatchMode::kOff: return "off";
    case BatchMode::kInstant: return "instant";
    case BatchMode::kWindow: return "window";
    case BatchMode::kAdaptive: return "adaptive";
  }
  return "?";
}

std::optional<BatchMode> batch_mode_from_string(std::string_view name) {
  if (name == "off") return BatchMode::kOff;
  if (name == "instant") return BatchMode::kInstant;
  if (name == "window") return BatchMode::kWindow;
  if (name == "adaptive") return BatchMode::kAdaptive;
  return std::nullopt;
}

const char* to_string(AdmissionRelease release) noexcept {
  switch (release) {
    case AdmissionRelease::kRequest: return "request";
    case AdmissionRelease::kRound: return "round";
  }
  return "?";
}

std::optional<AdmissionRelease> admission_release_from_string(
    std::string_view name) noexcept {
  if (name == "request") return AdmissionRelease::kRequest;
  if (name == "round") return AdmissionRelease::kRound;
  return std::nullopt;
}

const char* to_string(FailureResponse response) noexcept {
  switch (response) {
    case FailureResponse::kWait: return "wait";
    case FailureResponse::kRollback: return "rollback";
  }
  return "?";
}

std::optional<FailureResponse> failure_response_from_string(
    std::string_view name) noexcept {
  if (name == "wait") return FailureResponse::kWait;
  if (name == "rollback") return FailureResponse::kRollback;
  return std::nullopt;
}

void Controller::attach_switch(NodeId node, SendFn send) {
  TSU_ASSERT_MSG(send != nullptr, "null switch link");
  switches_[node] = std::move(send);
}

void Controller::attach_switch_encoded(NodeId node, SendEncodedFn send) {
  TSU_ASSERT_MSG(send != nullptr, "null encoded switch link");
  encoded_switches_[node] = std::move(send);
}

Controller::ActiveUpdate& Controller::insert_active(UpdateId id) {
  if (active_pool_.empty())
    return active_.emplace(id, ActiveUpdate{}).first->second;
  ActiveMap::node_type node = std::move(active_pool_.back());
  active_pool_.pop_back();
  node.key() = id;
  return active_.insert(std::move(node)).position->second;
}

void Controller::recycle_active(ActiveMap::iterator it) {
  ActiveMap::node_type node = active_.extract(it);
  ActiveUpdate& slot = node.mapped();
  slot.plan.reset();
  slot.next_round = 0;
  slot.waiting = 0;
  slot.coordinated = false;
  slot.speculative = false;
  slot.token = 0;
  slot.system = false;
  // request / metrics / release_plan keep their buffers; the next occupant
  // assigns over them.
  active_pool_.push_back(std::move(node));
}

void Controller::insert_waiting(Xid xid, UpdateId id, NodeId node) {
  if (waiting_pool_.empty()) {
    waiting_.emplace(xid, std::make_pair(id, node));
    return;
  }
  WaitingMap::node_type handle = std::move(waiting_pool_.back());
  waiting_pool_.pop_back();
  handle.key() = xid;
  handle.mapped() = std::make_pair(id, node);
  waiting_.insert(std::move(handle));
}

void Controller::recycle_waiting(WaitingMap::iterator it) {
  waiting_pool_.push_back(waiting_.extract(it));
}

void Controller::submit(UpdateRequest request) {
  PendingUpdate pending;
  pending.id = update_counter_++;
  pending.metrics.name = request.name;
  pending.metrics.flow = request.flow;
  pending.metrics.priority_class = request.priority_class;
  pending.metrics.submitted = sim_.now();
  pending.metrics.enqueued = request.enqueued.value_or(sim_.now());
  // Register in the conflict DAG before anything can start: a later
  // submission must see this request's footprint. Only conflict-aware
  // admission reads footprints; don't compute them for the other policies.
  admission_.submit(pending.id,
                    config_.admission == AdmissionPolicy::kConflictAware
                        ? Footprint::of(request)
                        : Footprint{});
  pending.request = std::move(request);
  queue_.push_back(std::move(pending));
  maybe_start_next_request();
}

void Controller::submit_plan(std::shared_ptr<const CompiledPlan> plan,
                             std::uint8_t priority_class,
                             std::optional<sim::SimTime> enqueued) {
  TSU_ASSERT_MSG(plan != nullptr, "null compiled plan");
  // A plan-backed pending entry owns no heap state (the plan carries the
  // request), so filling a warm queue slot allocates nothing.
  queue_.emplace_back();
  PendingUpdate& pending = queue_.back();
  pending.id = update_counter_++;
  // The empty request doubles as the per-submission parameter stash: the
  // start scan reads priority_class off it, and a rollback resubmission
  // reads both back when re-materializing the request.
  pending.request.priority_class = priority_class;
  pending.request.enqueued = enqueued;
  pending.metrics.flow = plan->request.flow;
  pending.metrics.priority_class = priority_class;
  pending.metrics.submitted = sim_.now();
  pending.metrics.enqueued = enqueued.value_or(sim_.now());
  // metrics.name is deferred to start_pending (copied from the plan into
  // pooled storage), keeping this slot heap-free.
  static const Footprint kNoFootprint;
  admission_.submit(pending.id,
                    config_.admission == AdmissionPolicy::kConflictAware
                        ? plan->footprint
                        : kNoFootprint);
  pending.plan = std::move(plan);
  maybe_start_next_request();
}

void Controller::maybe_start_next_request() {
  // Start every admissible request in arrival order while capacity lasts;
  // blocked requests are skipped, not waited on, so a conflicting head
  // never holds back independent work behind it. Held coordinated
  // sub-requests are also skipped: they start only when the coordinator
  // has every participating shard ready. Among the admissible entries the
  // strictly lowest priority class starts first; ties keep arrival order,
  // so all-default classes reproduce the pre-priority start order exactly.
  // The scan restarts after each start because start_round can
  // synchronously finish a degenerate update and re-enter here,
  // invalidating any held iterator.
  bool started = true;
  while (started && active_.size() < config_.max_in_flight) {
    started = false;
    auto best = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->held) continue;
      if (best != queue_.end() &&
          it->request.priority_class >= best->request.priority_class)
        continue;
      if (!admission_.admissible(it->id)) continue;
      best = it;
      if (best->request.priority_class == 0) break;
    }
    if (best != queue_.end()) {
      start_pending(best);
      started = true;
    }
  }
}

void Controller::start_pending(std::vector<PendingUpdate>::iterator it) {
  const UpdateId id = it->id;
  ActiveUpdate& active = insert_active(id);
  active.plan = std::move(it->plan);
  active.request = std::move(it->request);
  // Copy, not move: the pooled entry's string/vector buffers are reused,
  // and a plan-backed pending's metrics hold nothing worth stealing.
  active.metrics = it->metrics;
  if (active.plan != nullptr) active.metrics.name = active.plan->request.name;
  active.metrics.started = sim_.now();
  active.coordinated = it->held;
  active.speculative = it->speculative;
  active.token = it->token;
  // Per-round footprint release only means anything when footprints exist
  // (conflict-aware) and rounds complete one at a time (barriers on).
  if (config_.admission_release == AdmissionRelease::kRound &&
      config_.admission == AdmissionPolicy::kConflictAware &&
      config_.use_barriers) {
    if (active.plan != nullptr)
      // Copy-assign: a recycled entry's slices keep their capacity.
      active.release_plan = active.plan->release_plan;
    else
      active.release_plan = round_release_plan(active.request);
  } else {
    active.release_plan.clear();
  }
  queue_.erase(it);
  max_in_flight_observed_ = std::max(max_in_flight_observed_, active_.size());
  start_round(id);
}

void Controller::release_completed_round_rules(UpdateId id) {
  const auto it = active_.find(id);
  TSU_ASSERT(it != active_.end());
  ActiveUpdate& active = it->second;
  if (active.release_plan.empty()) return;
  const std::size_t round = active.next_round - 1;  // the just-completed one
  if (round >= active.release_plan.size()) return;
  // Copy the slice into the member scratch and clear it in place: starting
  // an unblocked request below can rehash active_ (invalidating the
  // reference), and clearing - not moving - keeps the slice's capacity for
  // the pooled entry's next occupant.
  release_rules_scratch_ = active.release_plan[round];
  active.release_plan[round].clear();
  if (release_rules_scratch_.empty()) return;
  if (admission_.release_rules(id, release_rules_scratch_).empty()) return;
  maybe_start_next_request();
  if (hooks_ != nullptr) hooks_->on_progress(shard_id_);
}

void Controller::submit_coordinated(UpdateRequest request,
                                    std::uint64_t token) {
  PendingUpdate pending;
  pending.id = update_counter_++;
  pending.held = true;
  pending.token = token;
  pending.metrics.name = request.name;
  pending.metrics.flow = request.flow;
  pending.metrics.priority_class = request.priority_class;
  pending.metrics.submitted = sim_.now();
  pending.metrics.enqueued = request.enqueued.value_or(sim_.now());
  admission_.submit(pending.id,
                    config_.admission == AdmissionPolicy::kConflictAware
                        ? Footprint::of(request)
                        : Footprint{});
  pending.request = std::move(request);
  coordinated_ids_[token] = pending.id;
  queue_.push_back(std::move(pending));
  // No start attempt: a held entry adds no start opportunity for the local
  // queue, and its own start is the coordinator's call.
}

bool Controller::coordinated_admissible(std::uint64_t token) const noexcept {
  const auto it = coordinated_ids_.find(token);
  return it != coordinated_ids_.end() && admission_.admissible(it->second);
}

void Controller::start_coordinated(std::uint64_t token, bool speculative) {
  const auto id_it = coordinated_ids_.find(token);
  TSU_ASSERT_MSG(id_it != coordinated_ids_.end(),
                 "start of unknown coordinated token");
  const UpdateId id = id_it->second;
  TSU_ASSERT_MSG(admission_.admissible(id) && has_capacity(),
                 "coordinated start without admission or capacity");
  const auto it =
      std::find_if(queue_.begin(), queue_.end(),
                   [id](const PendingUpdate& p) { return p.id == id; });
  TSU_ASSERT_MSG(it != queue_.end(),
                 "coordinated start of a non-pending update");
  it->speculative = speculative;
  start_pending(it);
}

bool Controller::coordinated_uncontended(std::uint64_t token) const noexcept {
  const auto it = coordinated_ids_.find(token);
  return it != coordinated_ids_.end() && !admission_.contended(it->second);
}

void Controller::release_round(std::uint64_t token) {
  const auto id_it = coordinated_ids_.find(token);
  TSU_ASSERT_MSG(id_it != coordinated_ids_.end(),
                 "round release of unknown coordinated token");
  const UpdateId id = id_it->second;
  const auto it = active_.find(id);
  TSU_ASSERT_MSG(it != active_.end(), "round release of an inactive update");
  const ActiveUpdate& active = it->second;
  const UpdateRequest& request = request_of(active);
  const sim::Duration interval = request.interval;
  // Speculative release: a DAG-disjoint sub-request whose next round is
  // empty installs nothing, so pacing the round buys nothing - confirm it
  // synchronously inside the coordinator's release loop. The skip removes
  // one interval-timer event; under the parallel engine every such timer
  // is a kShared event, i.e. a guaranteed horizon stall.
  const bool skip_interval =
      active.speculative && active.next_round < request.rounds.size() &&
      request.rounds[active.next_round].empty();
  if (interval == 0 || skip_interval) {
    if (skip_interval && interval != 0) ++speculative_releases_;
    start_round(id);
  } else {
    sim_.schedule(interval, [this, id]() { start_round(id); });
  }
}

sim::Duration Controller::adaptive_window() const noexcept {
  // Round-boundary collapse: with at most one update in the system, a
  // round's trailing barrier is provably the last message for its switches
  // until the replies return - holding it would buy nothing but latency.
  const std::size_t pressure = active_.size() + queue_.size();
  if (pressure <= 1) return 0;
  if (pressure >= kAdaptiveSaturation) return config_.batch_window;
  return config_.batch_window * pressure / kAdaptiveSaturation;
}

void Controller::send_to_switch(NodeId node, proto::Message message) {
  const auto it = switches_.find(node);
  TSU_ASSERT_MSG(it != switches_.end(), "message for unattached switch");
  // Fault tolerance: every FlowMod headed for the wire - round ops,
  // retries, resync pushes, rollback undos - commits to the shadow and the
  // unfenced log here, before batching can obscure it.
  if (fault_tolerance() && message.type() == proto::MsgType::kFlowMod)
    record_send(node, std::get<proto::FlowMod>(message.body));
  if (batch_mode_ == BatchMode::kOff) {
    it->second(message);
    return;
  }

  Outbox& box = outbox_[node];
  const std::size_t bytes = proto::encoded_size(message);
  box.bytes += bytes;
  box.entries.push_back(OutboxEntry{std::move(message), sim_.now(), bytes});

  if (batch_mode_ == BatchMode::kInstant) {
    // Same-instant coalescing: one zero-delay event ships every outbox.
    if (!flush_scheduled_) {
      flush_scheduled_ = true;
      // kLocal: a flush only ships this shard's outboxes through this
      // shard's channels; it can never complete an update or cross shards.
      sim_.schedule(
          0,
          [this]() {
            flush_scheduled_ = false;
            flush_all(FlushTrigger::kInstant);
          },
          sim::EventScope::kLocal);
    }
    return;
  }

  // kWindow / kAdaptive: the byte budget (or frame cap) force-flushes
  // ahead of the hold window...
  if (box.bytes >= config_.batch_bytes ||
      box.entries.size() >= proto::kMaxBatchMessages) {
    flush_switch(node, FlushTrigger::kBudget);
    return;
  }
  // ...otherwise the first message of a fill arms the cancellable flush
  // timer. Arming on first-touch is what bounds the hold: every later
  // message of this fill waits strictly less than the full window.
  if (!box.timer_armed) {
    box.timer_armed = true;
    const sim::Duration window = batch_mode_ == BatchMode::kAdaptive
                                     ? adaptive_window()
                                     : config_.batch_window;
    // kLocal: same argument as the instant flush above.
    box.timer = sim_.schedule(
        window,
        [this, node]() {
          outbox_.at(node).timer_armed = false;
          flush_switch(node, FlushTrigger::kTimer);
        },
        sim::EventScope::kLocal);
  }
}

void Controller::flush_switch(NodeId node, FlushTrigger trigger) {
  Outbox& box = outbox_.at(node);
  if (box.timer_armed) {
    box.timer_armed = false;
    sim_.cancel(box.timer);
    ++flush_timers_cancelled_;
  }
  if (box.entries.empty()) return;
  switch (trigger) {
    case FlushTrigger::kInstant: break;
    case FlushTrigger::kTimer: ++timer_flushes_; break;
    case FlushTrigger::kBudget: ++budget_flushes_; break;
  }

  flush_scratch_.clear();
  std::vector<OutboxEntry>& entries = flush_scratch_;
  entries.swap(box.entries);
  box.bytes = 0;
  const sim::SimTime now = sim_.now();
  for (const OutboxEntry& entry : entries)
    max_hold_ = std::max(max_hold_, now - entry.enqueued);

  const SendFn& send = switches_.at(node);
  std::size_t begin = 0;
  while (begin < entries.size()) {
    // Grow the chunk until either frame limit would be crossed.
    std::size_t end = begin + 1;
    std::size_t chunk_bytes = entries[begin].bytes;
    while (end < entries.size() && end - begin < proto::kMaxBatchMessages &&
           chunk_bytes + entries[end].bytes <= kMaxBatchBytes) {
      chunk_bytes += entries[end].bytes;
      ++end;
    }
    // A chunk of one (lone message, or the tail of a split) gains nothing
    // from batch framing: send it plain.
    if (end - begin == 1) {
      send(entries[begin].message);
    } else {
      std::vector<proto::Message> chunk;
      chunk.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i)
        chunk.push_back(std::move(entries[i].message));
      messages_coalesced_ += chunk.size();
      ++batches_sent_;
      const Xid xid = next_xid();
      send(proto::make_batch(xid, std::move(chunk)));
      retire_xid(xid);  // nothing routes on batch xids
    }
    begin = end;
  }
}

void Controller::flush_all(FlushTrigger trigger) {
  for (auto& [node, box] : outbox_) {
    (void)box;
    flush_switch(node, trigger);
  }
}

void Controller::send_round_ops(ActiveUpdate& active, std::size_t round) {
  const UpdateRequest& request = request_of(active);
  const std::vector<RoundOp>& ops = request.rounds[round];
  // Compiled-plan fast path: ship the cached frame with the live xid
  // patched in instead of building and encoding a Message - byte-identical
  // wire traffic, no encoder on the hot path. Only when eligible (see the
  // constructor) and the switch has an encoded link; otherwise fall back
  // per op.
  const bool pre_encoded = active.plan != nullptr && encoded_eligible_;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const RoundOp& op = ops[i];
    const Xid xid = next_xid();
    bool sent = false;
    if (pre_encoded) {
      const auto link = encoded_switches_.find(op.node);
      if (link != encoded_switches_.end()) {
        link->second(active.plan->flow_mod_frame(round, i), xid);
        sent = true;
      }
    }
    if (!sent) send_to_switch(op.node, proto::make_flow_mod(xid, op.mod));
    retire_xid(xid);  // nothing routes on FlowMod xids
    ++active.metrics.flow_mods_sent;
    ++active.metrics.rounds.back().flow_mods;
  }
}

void Controller::send_round_barrier(ActiveUpdate& active, UpdateId id,
                                    NodeId node) {
  const Xid xid = next_xid();
  insert_waiting(xid, id, node);
  ++active.waiting;
  bool sent = false;
  if (active.plan != nullptr && encoded_eligible_) {
    const auto link = encoded_switches_.find(node);
    if (link != encoded_switches_.end()) {
      link->second(active.plan->barrier_frame(), xid);
      sent = true;
    }
  }
  if (!sent) send_to_switch(node, proto::make_barrier_request(xid));
  fence_barrier(node, xid);
  ++active.metrics.barriers_sent;
  ++active.metrics.rounds.back().barriers;
}

void Controller::start_round(UpdateId id) {
  const auto it = active_.find(id);
  TSU_ASSERT(it != active_.end());
  ActiveUpdate& active = it->second;
  const UpdateRequest& request = request_of(active);

  if (active.next_round >= request.rounds.size()) {
    finish_update(id);
    return;
  }

  active.metrics.rounds.push_back(RoundMetrics{});
  active.metrics.rounds.back().started = sim_.now();

  if (config_.use_barriers) {
    // The paper's FSM: send the round's FlowMods, then barrier every switch
    // of the round and wait for all replies.
    const std::size_t round = active.next_round;
    send_round_ops(active, round);
    if (active.plan != nullptr) {
      // The plan's pre-deduplicated barrier targets, compiled by replaying
      // the set construction below - same switches, same order, no
      // per-submission set.
      for (const NodeId node : active.plan->barrier_order[round])
        send_round_barrier(active, id, node);
    } else {
      const std::vector<RoundOp>& ops = request.rounds[round];
      std::unordered_set<NodeId> round_switches;
      for (const RoundOp& op : ops) round_switches.insert(op.node);
      for (const NodeId node : round_switches)
        send_round_barrier(active, id, node);
    }
    ++active.next_round;
    if (active.waiting == 0) finish_round(id);  // empty round: advance
    return;
  }

  // Reckless mode (ablation): blast every round back-to-back; one trailing
  // barrier per touched switch detects completion.
  std::unordered_set<NodeId> touched;
  while (active.next_round < request.rounds.size()) {
    send_round_ops(active, active.next_round);
    for (const RoundOp& op : request.rounds[active.next_round])
      touched.insert(op.node);
    ++active.next_round;
  }
  for (const NodeId node : touched) send_round_barrier(active, id, node);
  if (active.waiting == 0) finish_round(id);
}

void Controller::on_message(NodeId from, const proto::Message& message) {
  switch (message.type()) {
    case proto::MsgType::kBarrierReply: {
      if (fault_tolerance()) {
        // FIFO channels: this reply fences every send up to its barrier,
        // whichever update the barrier belonged to.
        const auto seq_it = barrier_seq_.find(message.xid);
        if (seq_it != barrier_seq_.end()) {
          auto& pending = unfenced_[from];
          while (!pending.empty() && pending.front().seq <= seq_it->second)
            pending.pop_front();
          if (pending.empty()) full_resync_.erase(from);
          barrier_seq_.erase(seq_it);
        }
        const auto resync_it = resync_waiting_.find(message.xid);
        if (resync_it != resync_waiting_.end()) {
          if (resync_it->second == from) {
            if (config_.speculate) {
              // Speculation makes reply delivery shard-local; completing a
              // resync is not (on_switch_resynced_ reaches executor-global
              // state), so defer it to the next sync point as a same-instant
              // kShared event. Re-validate on fire: a second reconnect in
              // between abandons this resync.
              const Xid xid = message.xid;
              sim_.schedule(0, [this, from, xid]() {
                const auto it = resync_waiting_.find(xid);
                if (it == resync_waiting_.end() || it->second != from) return;
                finish_resync(from, xid);
              });
            } else {
              finish_resync(from, message.xid);
            }
          }
          return;
        }
      }
      // "For every barrier reply received ... determine the source switch
      //  ... removed from the set of switches of the current round." The
      //  xid routes the reply to the owning in-flight update.
      const auto it = waiting_.find(message.xid);
      if (it == waiting_.end() || it->second.second != from) {
        // With fault tolerance on, a late reply to a retried or rolled-back
        // barrier is expected traffic, not a protocol error.
        if (fault_tolerance()) {
          TSU_LOG(kDebug) << "late barrier xid " << message.xid
                          << " from switch " << from;
        } else {
          TSU_LOG(kWarn) << "unexpected barrier xid " << message.xid
                         << " from switch " << from;
        }
        return;
      }
      const UpdateId id = it->second.first;
      recycle_waiting(it);
      // Clean completion: kill the now-moot liveness timer (releasing its
      // closure eagerly) and recycle the xid.
      disarm_liveness(message.xid);
      retire_xid(message.xid);
      const auto update_it = active_.find(id);
      TSU_ASSERT_MSG(update_it != active_.end(),
                     "barrier reply for a finished update");
      TSU_ASSERT(update_it->second.waiting > 0);
      if (--update_it->second.waiting == 0) {
        if (config_.speculate) {
          // Speculation flips reply delivery to kLocal so barrier replies
          // process mid-epoch instead of stalling the parallel engine; the
          // shard-local bookkeeping above already ran, but completing the
          // round confirms to the coordinator (cross-shard state), so it
          // defers to the next sync point as a same-instant kShared event.
          // Identical in sequential mode, keeping both exec modes on one
          // event schedule. Re-validate on fire: a liveness rollback in
          // between can retire the update.
          sim_.schedule(0, [this, id]() {
            const auto it = active_.find(id);
            if (it == active_.end() || it->second.waiting != 0) return;
            finish_round(id);
          });
        } else {
          finish_round(id);
        }
      }
      return;
    }
    case proto::MsgType::kBatch: {
      // Reply batching (switchsim): a switch coalesced several replies of
      // one instant into a single frame; unpack and dispatch in order.
      for (const proto::Message& m :
           std::get<proto::Batch>(message.body).messages)
        on_message(from, m);
      return;
    }
    case proto::MsgType::kEchoRequest: {
      const auto it = switches_.find(from);
      if (it != switches_.end())
        it->second(proto::make_echo_reply(
            message.xid, std::get<proto::Echo>(message.body).payload));
      return;
    }
    case proto::MsgType::kHello:
      // A fresh control session: the switch rebooted (maybe stateless) or
      // its link flapped. The xid carries the handshake's state bit (the
      // stand-in for a features/stats exchange): nonzero means the tables
      // survived. Without fault tolerance this stays session plumbing.
      if (fault_tolerance()) handle_reconnect(from, message.xid != 0);
      return;
    case proto::MsgType::kEchoReply:
    case proto::MsgType::kFeaturesReply:
      return;  // session plumbing; nothing to do
    case proto::MsgType::kError:
      TSU_LOG(kError) << "switch " << from << " reported: "
                      << std::get<proto::Error>(message.body).text;
      return;
    default:
      TSU_LOG(kWarn) << "controller ignoring " << message.to_string();
      return;
  }
}

void Controller::finish_round(UpdateId id) {
  {
    const auto it = active_.find(id);
    TSU_ASSERT(it != active_.end());
    it->second.metrics.rounds.back().finished = sim_.now();
  }
  // Per-round footprint release may start unblocked requests, which can
  // rehash active_ - refetch the entry afterwards.
  release_completed_round_rules(id);
  const auto it = active_.find(id);
  TSU_ASSERT(it != active_.end());
  ActiveUpdate& active = it->second;

  const bool more_rounds = active.next_round < request_of(active).rounds.size();
  if (!more_rounds || !config_.use_barriers) {
    // A coordinated sub-request still confirms its final round (the
    // coordinator's sync accounting sees the full spread; with no next
    // round the confirmation releases nothing), then finishes locally:
    // its installed slice never changes again, so holding its footprint
    // for the other shards would only serialize needlessly.
    const bool coordinated = active.coordinated;
    const std::uint64_t token = active.token;
    const std::size_t round = active.next_round - 1;
    if (coordinated && config_.use_barriers && hooks_ != nullptr)
      hooks_->on_round_done(shard_id_, token, round);
    finish_update(id);
    return;
  }
  if (active.coordinated) {
    // Two-phase round barrier: confirm round completion and hold until
    // the coordinator releases the next round. The hook may synchronously
    // call release_round() when this was the last outstanding
    // confirmation, so nothing may touch `active` afterwards.
    const std::uint64_t token = active.token;
    const std::size_t round = active.next_round - 1;
    if (hooks_ != nullptr) hooks_->on_round_done(shard_id_, token, round);
    return;
  }
  const sim::Duration interval = request_of(active).interval;
  if (interval == 0) {
    start_round(id);
  } else {
    sim_.schedule(interval, [this, id]() { start_round(id); });
  }
}

void Controller::finish_update(UpdateId id) {
  const auto it = active_.find(id);
  TSU_ASSERT(it != active_.end());
  ActiveUpdate& active = it->second;
  active.metrics.finished = sim_.now();
  const bool coordinated = active.coordinated;
  const bool system = active.system;
  const std::uint64_t token = active.token;
  if (system) {
    // A rollback unwind: it never entered admission, and the metrics that
    // matter are the aborted original's (in the rollback context).
    recycle_active(it);
    finish_rollback(id);
    return;
  }

  if (coordinated) {
    // A cross-shard slice: the coordinator merges the per-shard metrics
    // and owns the completed list; this shard only frees its slot.
    UpdateMetrics metrics = std::move(active.metrics);
    recycle_active(it);
    admission_.release(id);
    coordinated_ids_.erase(token);
    maybe_start_next_request();
    if (hooks_ != nullptr) {
      hooks_->on_coordinated_done(shard_id_, token, std::move(metrics));
      hooks_->on_progress(shard_id_);
    }
    return;
  }

  // Record straight from the live entry (the log copy-assigns into its
  // ring slot), then recycle the entry buffers intact - no move chain, so
  // the steady state neither allocates nor frees here. Only after that is
  // the footprint dropped from the conflict DAG so blocked requests can
  // start into the freed slot.
  const UpdateMetrics& done = completed_.record(active.metrics);
  recycle_active(it);
  admission_.release(id);
  if (on_update_done_) on_update_done_(done);
  // "...deletes the message from the queue and starts processing the next
  //  message."
  maybe_start_next_request();
  if (hooks_ != nullptr) hooks_->on_progress(shard_id_);
}

// --- fault tolerance --------------------------------------------------

void Controller::seed_shadow(NodeId node, const proto::FlowMod& mod) {
  if (!fault_tolerance()) return;
  proto::apply_flow_mod(shadow_[node], mod);
}

void Controller::record_send(NodeId node, const proto::FlowMod& mod) {
  proto::apply_flow_mod(shadow_[node], mod);
  unfenced_[node].push_back(
      UnfencedSend{++send_seq_[node], mod.table, mod.priority, mod.match});
  if (mod.command == proto::FlowModCommand::kDelete)
    full_resync_.insert(node);
}

void Controller::fence_barrier(NodeId node, Xid xid) {
  if (!fault_tolerance()) return;
  barrier_seq_[xid] = send_seq_[node];
  arm_liveness(xid);
}

void Controller::arm_liveness(Xid xid) {
  // kShared: a timeout can retry, roll back or resync, all of which reach
  // beyond this shard's switches through the coordinator-facing state.
  liveness_timers_[xid] =
      sim_.schedule(config_.liveness_timeout,
                    [this, xid]() { on_liveness_timeout(xid); });
}

void Controller::on_liveness_timeout(Xid xid) {
  liveness_timers_.erase(xid);  // this very timer just fired
  // A resync barrier timed out: the switch died again (or the pushes were
  // eaten) mid-resync. Start over, conservatively assuming no state.
  const auto resync_it = resync_waiting_.find(xid);
  if (resync_it != resync_waiting_.end()) {
    const NodeId node = resync_it->second;
    ++timeouts_;
    barrier_seq_.erase(xid);
    resync_waiting_.erase(resync_it);
    handle_reconnect(node, false);
    return;
  }
  const auto it = waiting_.find(xid);
  if (it == waiting_.end()) return;  // fenced in time; stale timer
  const UpdateId id = it->second.first;
  const NodeId node = it->second.second;
  ++timeouts_;
  const ActiveUpdate& update = active_.at(id);
  if (config_.failure_response == FailureResponse::kRollback &&
      !update.coordinated && !update.system) {
    begin_rollback(id);
    return;
  }
  // Wait-style recovery: re-drive the silent switch. While it is down the
  // retry drops at the channel and the fresh barrier's timer fires again -
  // a liveness-period retry loop that ends at the reconnect resync. (Every
  // injected crash schedules its restart, so the loop is finite.)
  retry_update_switch(id, node);
}

void Controller::retry_update_switch(UpdateId id, NodeId node) {
  const auto it = active_.find(id);
  if (it == active_.end()) return;
  ActiveUpdate& update = it->second;
  // Swap the stale outstanding barrier for a fresh one; `waiting` still
  // counts exactly one outstanding fence for this (update, switch).
  bool outstanding = false;
  for (auto w = waiting_.begin(); w != waiting_.end();) {
    if (w->second.first == id && w->second.second == node) {
      barrier_seq_.erase(w->first);
      // Timer cancelled, but the xid is NOT recycled: the switch may yet
      // answer the stale barrier, and that late reply must stay routable
      // to nothing.
      disarm_liveness(w->first);
      w = waiting_.erase(w);
      outstanding = true;
    } else {
      ++w;
    }
  }
  if (!outstanding) return;  // the reply beat the retry; nothing to re-drive
  ++retries_;
  // Re-send everything this update has sent to `node` so far. FIFO
  // delivery plus OpenFlow's replace-on-identical-match semantics make the
  // replay safe whatever prefix survived: it lands the switch in exactly
  // the already-acknowledged state plus the in-flight round. Metrics only
  // count first sends.
  const UpdateRequest& request = request_of(update);
  const std::size_t sent = std::min(update.next_round, request.rounds.size());
  for (std::size_t r = 0; r < sent; ++r)
    for (const RoundOp& op : request.rounds[r])
      if (op.node == node) {
        const Xid mod_xid = next_xid();
        send_to_switch(node, proto::make_flow_mod(mod_xid, op.mod));
        retire_xid(mod_xid);
      }
  const Xid xid = next_xid();
  waiting_.emplace(xid, std::make_pair(id, node));
  send_to_switch(node, proto::make_barrier_request(xid));
  fence_barrier(node, xid);
}

void Controller::handle_reconnect(NodeId from, bool has_state) {
  // Shadow state is about to be replayed/corrected: any plan compiled
  // against the previous world must not be reused (see resync_generation).
  ++resync_generation_;
  // A second hello while a resync is in flight means the switch died again
  // mid-resync: the fresh image below supersedes the abandoned one.
  for (auto it = resync_waiting_.begin(); it != resync_waiting_.end();) {
    if (it->second == from) {
      barrier_seq_.erase(it->first);
      disarm_liveness(it->first);  // abandoned: cancel timer, keep the xid
      it = resync_waiting_.erase(it);
    } else {
      ++it;
    }
  }
  const auto shadow_it = shadow_.find(from);
  const bool full = !has_state || full_resync_.count(from) != 0;
  std::size_t mods = 0;
  if (full && shadow_it != shadow_.end()) {
    // Cold boot (or a retained table made unknowable by an unfenced
    // non-strict delete): replay the full shadow image. ADD overwrites a
    // rule with identical match and priority, so the replay is also safe
    // when state survived.
    for (const auto& [table_id, table] : shadow_it->second) {
      for (const flow::FlowRule& rule : table.rules()) {
        proto::FlowMod mod;
        mod.command = proto::FlowModCommand::kAdd;
        mod.table = table_id;
        mod.priority = rule.priority;
        mod.cookie = rule.cookie;
        mod.match = rule.match;
        mod.action = rule.action;
        const Xid mod_xid = next_xid();
        send_to_switch(from, proto::make_flow_mod(mod_xid, mod));
        retire_xid(mod_xid);
        ++mods;
      }
    }
  }
  if (has_state) {
    // Retained tables: only sends no barrier reply ever fenced are
    // uncertain - re-assert the shadow's verdict for exactly those keys.
    // (After a full replay this contributes the strict deletes for keys
    // the shadow no longer holds.) Snapshot the keys first: the sends
    // below append to the unfenced log being walked.
    std::vector<UnfencedSend> keys;
    const auto pending_it = unfenced_.find(from);
    if (pending_it != unfenced_.end())
      keys.assign(pending_it->second.begin(), pending_it->second.end());
    std::vector<const UnfencedSend*> unique;
    for (const UnfencedSend& key : keys) {
      const bool seen =
          std::any_of(unique.begin(), unique.end(), [&](const auto* u) {
            return u->table == key.table && u->priority == key.priority &&
                   u->match == key.match;
          });
      if (!seen) unique.push_back(&key);
    }
    for (const UnfencedSend* key : unique) {
      const flow::FlowRule* rule = nullptr;
      if (shadow_it != shadow_.end()) {
        const auto table_it = shadow_it->second.find(key->table);
        if (table_it != shadow_it->second.end()) {
          for (const flow::FlowRule& r : table_it->second.rules()) {
            if (r.match == key->match && r.priority == key->priority) {
              rule = &r;
              break;
            }
          }
        }
      }
      proto::FlowMod mod;
      mod.table = key->table;
      mod.priority = key->priority;
      mod.match = key->match;
      if (rule != nullptr) {
        if (full) continue;  // the full replay already re-asserted it
        mod.command = proto::FlowModCommand::kAdd;
        mod.cookie = rule->cookie;
        mod.action = rule->action;
      } else {
        mod.command = proto::FlowModCommand::kDeleteStrict;
      }
      const Xid mod_xid = next_xid();
      send_to_switch(from, proto::make_flow_mod(mod_xid, mod));
      retire_xid(mod_xid);
      ++mods;
    }
  }
  resync_frames_ += mods;
  // Fence the resync: its barrier reply proves the switch holds the shadow
  // image, and only then does it return to service and get its stalled
  // rounds replayed.
  const Xid xid = next_xid();
  resync_waiting_.emplace(xid, from);
  send_to_switch(from, proto::make_barrier_request(xid));
  fence_barrier(from, xid);
}

void Controller::finish_resync(NodeId node, Xid xid) {
  resync_waiting_.erase(xid);
  // Clean, reply-confirmed completion: safe to cancel the timer and
  // recycle (unlike abandoned resyncs, whose replies may still arrive).
  disarm_liveness(xid);
  retire_xid(xid);
  full_resync_.erase(node);
  ++resyncs_;
  if (on_switch_resynced_) on_switch_resynced_(node);
  // Revive every update stalled on this switch: replay its mods and a
  // fresh barrier now that the switch provably holds the shadow image.
  // (Their liveness timers would get there too; this skips the wait.)
  std::vector<UpdateId> stalled;
  for (const auto& [x, target] : waiting_) {
    (void)x;
    if (target.second == node) stalled.push_back(target.first);
  }
  std::sort(stalled.begin(), stalled.end());
  stalled.erase(std::unique(stalled.begin(), stalled.end()), stalled.end());
  for (const UpdateId id : stalled) retry_update_switch(id, node);
}

void Controller::begin_rollback(UpdateId id) {
  const auto it = active_.find(id);
  TSU_ASSERT(it != active_.end());
  ActiveUpdate aborted = std::move(it->second);
  active_.erase(it);
  for (auto w = waiting_.begin(); w != waiting_.end();) {
    if (w->second.first == id) {
      barrier_seq_.erase(w->first);
      disarm_liveness(w->first);  // rolled back: cancel timer, keep the xid
      w = waiting_.erase(w);
    } else {
      ++w;
    }
  }
  ++rollbacks_;

  // Unwind: replay the undos of every round that sent anything, newest
  // first, each inverse round barrier-fenced, so the unwind walks back
  // through exactly the forward rounds' checked states. Every op of a
  // round is undone, dead switches included: a mixed round - some nodes
  // rolled back, some not - could leave the forwarding graph in a state no
  // schedule checker ever admitted. Drops at dead switches are re-driven
  // by retry and resync like any other send.
  const UpdateRequest& source = request_of(aborted);
  UpdateRequest inverse;
  inverse.name = source.name + "/rollback";
  inverse.flow = source.flow;
  const std::size_t sent = std::min(aborted.next_round, source.rounds.size());
  for (std::size_t r = sent; r-- > 0;) {
    std::vector<RoundOp> ops;
    for (const RoundOp& op : source.rounds[r])
      if (op.undo.has_value()) ops.push_back(RoundOp{op.node, *op.undo, {}});
    if (!ops.empty()) inverse.rounds.push_back(std::move(ops));
  }

  const UpdateId unwind_id = update_counter_++;
  RollbackCtx ctx;
  ctx.original = id;
  if (aborted.plan != nullptr) {
    // Materialize the canonical request for the resubmission; the
    // per-submission class/arrival live on the (otherwise empty) stash
    // request, exactly as submit() would have carried them.
    ctx.request = aborted.plan->request;
    ctx.request.priority_class = aborted.request.priority_class;
    ctx.request.enqueued = aborted.request.enqueued;
  } else {
    ctx.request = std::move(aborted.request);
  }
  ctx.metrics = std::move(aborted.metrics);
  rollback_ctx_.emplace(unwind_id, std::move(ctx));

  ActiveUpdate unwind;
  unwind.request = std::move(inverse);
  unwind.metrics.name = unwind.request.name;
  unwind.metrics.flow = unwind.request.flow;
  unwind.metrics.submitted = sim_.now();
  unwind.metrics.enqueued = sim_.now();
  unwind.metrics.started = sim_.now();
  unwind.system = true;
  active_.emplace(unwind_id, std::move(unwind));
  start_round(unwind_id);
}

void Controller::finish_rollback(UpdateId id) {
  const auto it = rollback_ctx_.find(id);
  TSU_ASSERT_MSG(it != rollback_ctx_.end(), "rollback without context");
  RollbackCtx ctx = std::move(it->second);
  rollback_ctx_.erase(it);
  // The aborted update's footprint protected the touched rules through the
  // whole unwind; only now may conflicting requests start.
  admission_.release(ctx.original);
  if (config_.resubmit_after_rollback) {
    ++resubmissions_;
    // A fresh attempt after a backoff (giving the failed switch time to
    // come back); it re-enters admission as a new arrival.
    sim_.schedule(effective_backoff(),
                  [this, request = std::move(ctx.request)]() mutable {
                    submit(std::move(request));
                  });
  } else {
    ctx.metrics.finished = sim_.now();
    ctx.metrics.aborted = true;
    const UpdateMetrics& done = completed_.record(std::move(ctx.metrics));
    if (on_update_done_) on_update_done_(done);
  }
  maybe_start_next_request();
  if (hooks_ != nullptr) hooks_->on_progress(shard_id_);
}

}  // namespace tsu::controller
