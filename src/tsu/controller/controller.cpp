#include "tsu/controller/controller.hpp"

#include <unordered_set>

#include "tsu/util/log.hpp"

namespace tsu::controller {

void Controller::attach_switch(NodeId node, SendFn send) {
  TSU_ASSERT_MSG(send != nullptr, "null switch link");
  switches_[node] = std::move(send);
}

void Controller::submit(UpdateRequest request) {
  UpdateMetrics metrics;
  metrics.name = request.name;
  metrics.submitted = sim_.now();
  queue_.push_back(std::move(request));
  submitted_metrics_.push_back(metrics);
  maybe_start_next_request();
}

void Controller::maybe_start_next_request() {
  if (active_.has_value() || queue_.empty()) return;
  ActiveUpdate active;
  active.request = std::move(queue_.front());
  queue_.pop_front();
  active.metrics = submitted_metrics_.front();
  submitted_metrics_.pop_front();
  active.metrics.started = sim_.now();
  active_ = std::move(active);
  start_round();
}

void Controller::send_round_ops(const std::vector<RoundOp>& ops) {
  for (const RoundOp& op : ops) {
    const auto it = switches_.find(op.node);
    TSU_ASSERT_MSG(it != switches_.end(), "FlowMod for unattached switch");
    it->second(proto::make_flow_mod(next_xid(), op.mod));
    ++active_->metrics.flow_mods_sent;
    ++active_->metrics.rounds.back().flow_mods;
  }
}

void Controller::start_round() {
  TSU_ASSERT(active_.has_value());
  ActiveUpdate& active = *active_;

  if (active.next_round >= active.request.rounds.size()) {
    finish_update();
    return;
  }

  active.metrics.rounds.push_back(RoundMetrics{});
  active.metrics.rounds.back().started = sim_.now();

  if (config_.use_barriers) {
    // The paper's FSM: send the round's FlowMods, then barrier every switch
    // of the round and wait for all replies.
    const std::vector<RoundOp>& ops = active.request.rounds[active.next_round];
    send_round_ops(ops);
    std::unordered_set<NodeId> round_switches;
    for (const RoundOp& op : ops) round_switches.insert(op.node);
    for (const NodeId node : round_switches) {
      const Xid xid = next_xid();
      active.waiting.emplace(xid, node);
      switches_.at(node)(proto::make_barrier_request(xid));
      ++active.metrics.barriers_sent;
      ++active.metrics.rounds.back().barriers;
    }
    ++active.next_round;
    if (active.waiting.empty()) finish_round();  // empty round: advance
    return;
  }

  // Reckless mode (ablation): blast every round back-to-back; one trailing
  // barrier per touched switch detects completion.
  std::unordered_set<NodeId> touched;
  while (active.next_round < active.request.rounds.size()) {
    const std::vector<RoundOp>& ops = active.request.rounds[active.next_round];
    send_round_ops(ops);
    for (const RoundOp& op : ops) touched.insert(op.node);
    ++active.next_round;
  }
  for (const NodeId node : touched) {
    const Xid xid = next_xid();
    active.waiting.emplace(xid, node);
    switches_.at(node)(proto::make_barrier_request(xid));
    ++active.metrics.barriers_sent;
    ++active.metrics.rounds.back().barriers;
  }
  if (active.waiting.empty()) finish_round();
}

void Controller::on_message(NodeId from, const proto::Message& message) {
  switch (message.type()) {
    case proto::MsgType::kBarrierReply: {
      if (!active_.has_value()) {
        TSU_LOG(kWarn) << "stray barrier reply from switch " << from;
        return;
      }
      // "For every barrier reply received ... determine the source switch
      //  ... removed from the set of switches of the current round."
      const auto it = active_->waiting.find(message.xid);
      if (it == active_->waiting.end() || it->second != from) {
        TSU_LOG(kWarn) << "unexpected barrier xid " << message.xid
                       << " from switch " << from;
        return;
      }
      active_->waiting.erase(it);
      if (active_->waiting.empty()) finish_round();
      return;
    }
    case proto::MsgType::kEchoRequest: {
      const auto it = switches_.find(from);
      if (it != switches_.end())
        it->second(proto::make_echo_reply(
            message.xid, std::get<proto::Echo>(message.body).payload));
      return;
    }
    case proto::MsgType::kEchoReply:
    case proto::MsgType::kHello:
    case proto::MsgType::kFeaturesReply:
      return;  // session plumbing; nothing to do
    case proto::MsgType::kError:
      TSU_LOG(kError) << "switch " << from << " reported: "
                      << std::get<proto::Error>(message.body).text;
      return;
    default:
      TSU_LOG(kWarn) << "controller ignoring " << message.to_string();
      return;
  }
}

void Controller::finish_round() {
  TSU_ASSERT(active_.has_value());
  active_->metrics.rounds.back().finished = sim_.now();

  const bool more_rounds =
      active_->next_round < active_->request.rounds.size();
  if (!more_rounds || !config_.use_barriers) {
    finish_update();
    return;
  }
  const sim::Duration interval = active_->request.interval;
  if (interval == 0) {
    start_round();
  } else {
    sim_.schedule(interval, [this]() { start_round(); });
  }
}

void Controller::finish_update() {
  TSU_ASSERT(active_.has_value());
  active_->metrics.finished = sim_.now();
  completed_.push_back(active_->metrics);
  const UpdateMetrics& done = completed_.back();
  active_.reset();
  if (on_update_done_) on_update_done_(done);
  // "...deletes the message from the queue and starts processing the next
  //  message."
  maybe_start_next_request();
}

}  // namespace tsu::controller
