#include "tsu/controller/shard.hpp"

#include <algorithm>
#include <utility>

#include "tsu/util/log.hpp"

namespace tsu::controller {

ShardCoordinator::ShardCoordinator(sim::ShardedSim& sim,
                                   topo::SwitchPartition partition,
                                   const ControllerConfig& config)
    : sim_(sim),
      partition_(std::move(partition)),
      // Speculation needs footprints: only conflict-aware admission can
      // prove an update disjoint from everything live.
      speculate_(config.speculate &&
                 config.admission == AdmissionPolicy::kConflictAware) {
  const std::size_t count = partition_.shards();
  TSU_ASSERT_MSG(count >= 1 && count <= proto::kMaxXidShards,
                 "shard count outside [1, 256]");
  TSU_ASSERT_MSG(sim_.shard_count() == count,
                 "sharded clock and partition disagree on shard count");
  shards_.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    shards_.push_back(std::make_unique<ControllerShard>(
        static_cast<std::uint8_t>(s), sim_.shard(s), config, this));
    // Shard-local completions land on the coordinator's completed list in
    // global completion order; cross-shard merges arrive through
    // on_coordinated_done instead.
    shards_.back()->engine().set_on_update_done(
        [this](const UpdateMetrics& metrics) {
          const UpdateMetrics& done = completed_.record(metrics);
          if (on_update_done_) on_update_done_(done);
        });
  }
}

void ShardCoordinator::attach_switch(NodeId node, Controller::SendFn send) {
  ControllerShard& owner = *shards_[partition_.shard_of(node)];
  owner.engine().attach_switch(node, std::move(send));
  owner.note_switch_attached();
}

void ShardCoordinator::on_message(NodeId from, const proto::Message& message) {
  const std::size_t owner = partition_.shard_of(from);
  if (message.type() == proto::MsgType::kBarrierReply &&
      proto::xid_shard(message.xid) != owner) {
    TSU_LOG(kWarn) << "barrier reply from switch " << from << " tagged shard "
                   << static_cast<unsigned>(proto::xid_shard(message.xid))
                   << " but routed to shard " << owner;
  }
  shards_[owner]->engine().on_message(from, message);
}

void ShardCoordinator::submit(UpdateRequest request) {
  if (shards_.size() == 1) {
    shards_[0]->engine().submit(std::move(request));
    return;
  }

  std::vector<std::uint8_t> parts;
  {
    std::vector<bool> touched(shards_.size(), false);
    for (const std::vector<RoundOp>& round : request.rounds)
      for (const RoundOp& op : round)
        touched[partition_.shard_of(op.node)] = true;
    for (std::size_t s = 0; s < touched.size(); ++s)
      if (touched[s]) parts.push_back(static_cast<std::uint8_t>(s));
  }
  if (parts.size() <= 1) {
    // Shard-local (or degenerate empty): the owner runs it exactly like
    // the single controller would.
    shards_[parts.empty() ? 0 : parts.front()]->engine().submit(
        std::move(request));
    return;
  }

  // Cross-shard: split into per-shard sub-requests with aligned round
  // indices - a shard with no ops in round k keeps an empty round k, so
  // the k-th round of every slice confirms the k-th global round.
  const std::uint64_t token = next_token_++;
  CrossUpdate cross;
  cross.shards = parts;
  cross.total_rounds = request.rounds.size();
  ++cross_shard_updates_;

  std::vector<UpdateRequest> subs(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    subs[i].name = request.name;
    subs[i].flow = request.flow;
    subs[i].interval = request.interval;
    subs[i].priority_class = request.priority_class;
    subs[i].enqueued = request.enqueued;
    subs[i].rounds.resize(request.rounds.size());
  }
  for (std::size_t r = 0; r < request.rounds.size(); ++r) {
    for (RoundOp& op : request.rounds[r]) {
      const std::uint8_t owner =
          static_cast<std::uint8_t>(partition_.shard_of(op.node));
      const std::size_t slot =
          static_cast<std::size_t>(std::lower_bound(parts.begin(), parts.end(),
                                                    owner) -
                                   parts.begin());
      subs[slot].rounds[r].push_back(std::move(op));
    }
  }

  cross_.emplace(token, std::move(cross));
  for (std::size_t i = 0; i < parts.size(); ++i)
    shards_[parts[i]]->engine().submit_coordinated(std::move(subs[i]), token);
  pending_cross_.push_back(token);
  try_start_cross();
}

void ShardCoordinator::submit_plan(std::shared_ptr<const CompiledPlan> plan,
                                   std::uint8_t priority_class,
                                   std::optional<sim::SimTime> enqueued) {
  if (shards_.size() == 1) {
    shards_[0]->engine().submit_plan(std::move(plan), priority_class,
                                     enqueued);
    return;
  }
  // Route by the plan's pre-deduplicated touched set - no request
  // materialization, no per-round scan. Same partition function as
  // submit()'s scan, so the routing decision is identical.
  int owner = -1;
  bool cross = false;
  for (const NodeId node : plan->touched) {
    const int shard = static_cast<int>(partition_.shard_of(node));
    if (owner < 0) {
      owner = shard;
    } else if (shard != owner) {
      cross = true;
      break;
    }
  }
  if (!cross) {
    shards_[owner < 0 ? 0 : owner]->engine().submit_plan(
        std::move(plan), priority_class, enqueued);
    return;
  }
  // Cross-shard: the coordinated protocol needs per-shard sub-requests, so
  // materialize the canonical request and take the ordinary split path.
  // Identical to the uncached submission by construction.
  UpdateRequest request = plan->request;
  request.priority_class = priority_class;
  request.enqueued = enqueued;
  submit(std::move(request));
}

void ShardCoordinator::try_start_cross() {
  // Starting a sub-request can synchronously confirm empty rounds, finish
  // slices and re-enter through on_progress; the guard collapses those
  // nested calls into the outer scan, which restarts after every start.
  if (starting_) return;
  starting_ = true;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = pending_cross_.begin(); it != pending_cross_.end(); ++it) {
      const std::uint64_t token = *it;
      // Copy: the start loop below can mutate cross_ re-entrantly.
      const std::vector<std::uint8_t> parts = cross_.at(token).shards;
      bool ready = true;
      for (const std::uint8_t s : parts) {
        const Controller& engine = shards_[s]->engine();
        if (!engine.coordinated_admissible(token) || !engine.has_capacity()) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      // Speculation gate, decided once at start: the update runs
      // speculatively only when every shard's admission DAG slice shows it
      // edge-free - no live footprint anywhere can observe its rules, so
      // its empty rounds may confirm without the pacing barrier.
      bool speculative = speculate_;
      if (speculative) {
        for (const std::uint8_t s : parts) {
          if (!shards_[s]->engine().coordinated_uncontended(token)) {
            speculative = false;
            break;
          }
        }
      }
      pending_cross_.erase(it);
      // Atomic acquisition: every participating shard starts in this same
      // instant, so no cross-shard update ever holds a partial slot set.
      for (const std::uint8_t s : parts)
        shards_[s]->engine().start_coordinated(token, speculative);
      progress = true;
      break;
    }
  }
  starting_ = false;
}

void ShardCoordinator::on_round_done(std::uint8_t, std::uint64_t token,
                                     std::size_t round) {
  CrossUpdate& cross = cross_.at(token);
  TSU_ASSERT_MSG(round == cross.confirm_round,
                 "cross-shard round confirmations out of lockstep");
  if (cross.confirms == 0) cross.first_confirm = sim_.now();
  ++cross.confirms;
  if (cross.confirms < cross.shards.size()) return;

  // Round `round` is installed on every shard: account the sync spread,
  // then release the next round's barriers everywhere. The release loop
  // can recurse (empty rounds confirm synchronously) and even retire the
  // whole update, so nothing touches `cross` after the copies below.
  sync_overhead_ += sim_.now() - cross.first_confirm;
  ++rounds_synced_;
  const std::size_t next = round + 1;
  if (next >= cross.total_rounds) return;  // final round: shards self-finish
  cross.confirm_round = next;
  cross.confirms = 0;
  const std::vector<std::uint8_t> parts = cross.shards;
  for (const std::uint8_t s : parts)
    shards_[s]->engine().release_round(token);
}

void ShardCoordinator::on_coordinated_done(std::uint8_t, std::uint64_t token,
                                           UpdateMetrics metrics) {
  CrossUpdate& cross = cross_.at(token);
  cross.slices.push_back(std::move(metrics));
  if (cross.slices.size() < cross.shards.size()) return;
  UpdateMetrics merged = merge_slices(cross.slices);
  cross_.erase(token);
  const UpdateMetrics& done = completed_.record(std::move(merged));
  if (on_update_done_) on_update_done_(done);
}

void ShardCoordinator::on_progress(std::uint8_t) { try_start_cross(); }

UpdateMetrics ShardCoordinator::merge_slices(
    std::vector<UpdateMetrics>& slices) {
  // One request's view across its shards: earliest start, latest finish,
  // summed message counts; per-round metrics merge index-by-index (slices
  // keep aligned round indices by construction).
  UpdateMetrics merged = std::move(slices.front());
  for (std::size_t i = 1; i < slices.size(); ++i) {
    const UpdateMetrics& slice = slices[i];
    merged.enqueued = std::min(merged.enqueued, slice.enqueued);
    merged.submitted = std::min(merged.submitted, slice.submitted);
    merged.started = std::min(merged.started, slice.started);
    merged.finished = std::max(merged.finished, slice.finished);
    merged.flow_mods_sent += slice.flow_mods_sent;
    merged.barriers_sent += slice.barriers_sent;
    if (merged.rounds.size() < slice.rounds.size())
      merged.rounds.resize(slice.rounds.size());
    for (std::size_t r = 0; r < slice.rounds.size(); ++r) {
      RoundMetrics& into = merged.rounds[r];
      const RoundMetrics& from = slice.rounds[r];
      into.started = std::min(into.started, from.started);
      into.finished = std::max(into.finished, from.finished);
      into.flow_mods += from.flow_mods;
      into.barriers += from.barriers;
    }
  }
  return merged;
}

bool ShardCoordinator::idle() const noexcept {
  for (const auto& shard : shards_)
    if (!shard->engine().idle()) return false;
  return pending_cross_.empty() && cross_.empty();
}

std::size_t ShardCoordinator::queued() const noexcept {
  return sum_over_shards([](const Controller& c) { return c.queued(); });
}

std::size_t ShardCoordinator::in_flight() const noexcept {
  return sum_over_shards([](const Controller& c) { return c.in_flight(); });
}

std::size_t ShardCoordinator::max_in_flight_observed() const noexcept {
  return max_over_shards(
      [](const Controller& c) { return c.max_in_flight_observed(); });
}

std::size_t ShardCoordinator::messages_coalesced() const noexcept {
  return sum_over_shards(
      [](const Controller& c) { return c.messages_coalesced(); });
}

std::size_t ShardCoordinator::batches_sent() const noexcept {
  return sum_over_shards([](const Controller& c) { return c.batches_sent(); });
}

std::size_t ShardCoordinator::timer_flushes() const noexcept {
  return sum_over_shards(
      [](const Controller& c) { return c.timer_flushes(); });
}

std::size_t ShardCoordinator::budget_flushes() const noexcept {
  return sum_over_shards(
      [](const Controller& c) { return c.budget_flushes(); });
}

std::size_t ShardCoordinator::flush_timers_cancelled() const noexcept {
  return sum_over_shards(
      [](const Controller& c) { return c.flush_timers_cancelled(); });
}

sim::Duration ShardCoordinator::max_hold() const noexcept {
  return max_over_shards([](const Controller& c) { return c.max_hold(); });
}

std::uint64_t ShardCoordinator::conflict_edges() const noexcept {
  return sum_over_shards(
      [](const Controller& c) { return c.conflict_edges(); });
}

std::uint64_t ShardCoordinator::blocked_submissions() const noexcept {
  return sum_over_shards(
      [](const Controller& c) { return c.blocked_submissions(); });
}

std::size_t ShardCoordinator::blocked() const noexcept {
  return sum_over_shards([](const Controller& c) { return c.blocked(); });
}

std::size_t ShardCoordinator::timeouts() const noexcept {
  return sum_over_shards([](const Controller& c) { return c.timeouts(); });
}

std::size_t ShardCoordinator::resyncs() const noexcept {
  return sum_over_shards([](const Controller& c) { return c.resyncs(); });
}

std::size_t ShardCoordinator::resync_frames() const noexcept {
  return sum_over_shards(
      [](const Controller& c) { return c.resync_frames(); });
}

std::size_t ShardCoordinator::rollbacks() const noexcept {
  return sum_over_shards([](const Controller& c) { return c.rollbacks(); });
}

std::size_t ShardCoordinator::retries() const noexcept {
  return sum_over_shards([](const Controller& c) { return c.retries(); });
}

std::size_t ShardCoordinator::resubmissions() const noexcept {
  return sum_over_shards(
      [](const Controller& c) { return c.resubmissions(); });
}

}  // namespace tsu::controller
