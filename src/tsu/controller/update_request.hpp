// Update requests: the controller-side representation of one policy change.
//
// Mirrors the paper's message objects: "All messages save the update
// schedule and the OpenFlow messages in the message object and therefore,
// every round of the update schedule is processed in the same way." A
// request carries, per round, the FlowMods destined for each switch; the
// interval field is the inter-round pause from the REST header.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tsu/proto/messages.hpp"
#include "tsu/sim/time.hpp"
#include "tsu/update/instance.hpp"
#include "tsu/update/optimizer.hpp"
#include "tsu/update/schedule.hpp"
#include "tsu/util/ids.hpp"

namespace tsu::controller {

struct RoundOp {
  NodeId node = kInvalidNode;
  proto::FlowMod mod;
  // Inverse of `mod` against the pre-update state (ADD -> DELETE_STRICT,
  // MODIFY -> MODIFY back to the old next hop, cleanup DELETE -> re-ADD):
  // the rollback path replays completed rounds' undos in reverse round
  // order to abort a partially installed update. Absent for raw mods whose
  // prior state the lowering never saw (REST "add" passthrough).
  std::optional<proto::FlowMod> undo;
};

struct UpdateRequest {
  std::string name;
  FlowId flow = 0;
  std::vector<std::vector<RoundOp>> rounds;
  sim::Duration interval = 0;  // pause between rounds ("interval" in REST)
  // Admission ordering class: when several queued requests are admissible,
  // the controller starts the strictly lowest class first (0 = highest
  // priority); within a class, arrival order. All-default classes keep the
  // pre-priority start order bit-identical.
  std::uint8_t priority_class = 0;
  // Service-mode arrival hint: when the request entered the serving system
  // (pending queue / rate limiter), possibly well before submit(). Unset
  // means "arrived at submit time" - the closed-loop behaviour.
  std::optional<sim::SimTime> enqueued;
};

// The rules that realize a path before any update: every path node forwards
// to its successor; the destination delivers to its host.
std::vector<RoundOp> initial_rules(const update::Instance& inst, FlowId flow,
                                   std::uint16_t priority);

// Lowers a scheduler's output to per-round FlowMods:
//   new-only nodes  -> ADD,
//   both-path nodes -> MODIFY,
//   cleanup nodes   -> DELETE_STRICT (appended as a final round).
UpdateRequest request_from_schedule(const update::Instance& inst,
                                    const update::Schedule& schedule,
                                    FlowId flow, std::uint16_t priority,
                                    sim::Duration interval);

// Lowers a multi-policy merged schedule (update::merge_policies) to one
// controller request whose global rounds interleave the policies' FlowMods
// (flows[i] is policy i's flow id). Each policy's rounds stay in order and
// barrier-separated, so every per-policy transient guarantee carries over;
// the merge only parallelizes across policies. Cleanup deletes of all
// policies are appended as one final round.
UpdateRequest request_from_merged(
    const std::vector<const update::Instance*>& policies,
    const std::vector<const update::Schedule*>& schedules,
    const update::MergedSchedule& merged, const std::vector<FlowId>& flows,
    std::uint16_t priority, sim::Duration interval);

}  // namespace tsu::controller
