// The sharded controller: partition the switches across N ControllerShard
// instances - each owning a disjoint switch set, its own admission DAG
// slice, its own per-switch outboxes and its own event queue of the
// sharded logical clock (sim/sharded.hpp) - plus the ShardCoordinator that
// routes update requests and runs cross-shard updates through a two-phase
// round protocol.
//
// Routing. A request whose FlowMods all land on one shard is forwarded
// verbatim: the owning shard runs it exactly like the single-controller
// engine. With shards = 1 every request takes this path, which is why the
// sharded controller is bit-identical to the unsharded one. A request
// spanning shards is split into per-shard sub-requests with ALIGNED round
// indices (a shard with no ops in round k keeps an empty round k) and
// coordinated:
//
//   admission   every sub-request enters its shard's admission DAG at the
//               request's global arrival position, so per-shard dependency
//               edges are consistent with one global arrival order and the
//               cross-shard wait graph stays acyclic. The update starts
//               only when EVERY participating shard reports it admissible
//               AND has a free max_in_flight slot, and then starts on all
//               of them in the same instant - atomic capacity acquisition,
//               so two cross-shard updates can never deadlock on partially
//               grabbed slots.
//   rounds      after round k's barriers return on a shard, the shard
//               confirms to the coordinator and holds; only when ALL
//               participating shards confirmed round k does the
//               coordinator release round k+1 everywhere. No shard can
//               race ahead, so every per-round consistency guarantee of
//               the planned schedule survives the sharding.
//   completion  a shard whose slice ran out of rounds finishes locally and
//               releases its admission footprint immediately - its
//               installed rules never change again - while slower shards
//               drain; the coordinator merges the per-shard metric slices
//               into one UpdateMetrics when the last shard reports.
//
// Replies route by switch ownership (the partition), and each shard tags
// its xids with its id (proto::make_shard_xid) so a misrouted barrier
// reply is detectable on sight.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "tsu/controller/controller.hpp"
#include "tsu/sim/sharded.hpp"
#include "tsu/topo/partition.hpp"

namespace tsu::controller {

// One controller shard: the concurrent update engine bound to a shard id
// (which tags its xids) and the partition slice of switches it owns.
class ControllerShard {
 public:
  ControllerShard(std::uint8_t id, sim::Simulator& sim,
                  const ControllerConfig& config,
                  Controller::CoordinationHooks* hooks)
      : engine_(sim, config) {
    engine_.set_shard(id, hooks);
  }

  std::uint8_t id() const noexcept { return engine_.shard_id(); }
  Controller& engine() noexcept { return engine_; }
  const Controller& engine() const noexcept { return engine_; }

  std::size_t switches_owned() const noexcept { return switches_owned_; }
  void note_switch_attached() noexcept { ++switches_owned_; }

 private:
  Controller engine_;
  std::size_t switches_owned_ = 0;
};

// Routes requests and replies between the outside world and the shards,
// and drives the cross-shard protocol described in the file comment. The
// public surface mirrors Controller's, so the executor drives either
// interchangeably.
class ShardCoordinator final : public Controller::CoordinationHooks {
 public:
  ShardCoordinator(sim::ShardedSim& sim, topo::SwitchPartition partition,
                   const ControllerConfig& config);

  std::size_t shard_count() const noexcept { return shards_.size(); }
  ControllerShard& shard(std::size_t i) { return *shards_[i]; }
  const topo::SwitchPartition& partition() const noexcept {
    return partition_;
  }
  std::size_t shard_of(NodeId node) const noexcept {
    return partition_.shard_of(node);
  }

  // Registers the outbound channel towards a switch on its owning shard.
  void attach_switch(NodeId node, Controller::SendFn send);
  // Registers the pre-encoded send path on the owning shard (plan
  // submissions; see Controller::attach_switch_encoded).
  void attach_switch_encoded(NodeId node, Controller::SendEncodedFn send) {
    shards_[shard_of(node)]->engine().attach_switch_encoded(node,
                                                            std::move(send));
  }
  // Fault tolerance (sim/faults.hpp): shadow seeding and the resync
  // callback route to the switch's owning shard; see controller.hpp.
  void seed_shadow(NodeId node, const proto::FlowMod& mod) {
    shards_[shard_of(node)]->engine().seed_shadow(node, mod);
  }
  void set_on_switch_resynced(std::function<void(NodeId)> fn) {
    for (auto& shard : shards_) shard->engine().set_on_switch_resynced(fn);
  }
  // Inbound dispatch: routes a switch's reply to the shard that owns it.
  void on_message(NodeId from, const proto::Message& message);
  // Routes a request: forwarded whole when it touches one shard, split and
  // coordinated when it spans several.
  void submit(UpdateRequest request);
  // Compiled-plan submission: routed by the plan's touched-switch set
  // without materializing a request. A shard-local plan forwards to the
  // owning engine's submit_plan; a cross-shard one falls back to the
  // coordinated split of the plan's canonical request (cold by design -
  // the split must re-key xids and rounds per shard anyway).
  void submit_plan(std::shared_ptr<const CompiledPlan> plan,
                   std::uint8_t priority_class,
                   std::optional<sim::SimTime> enqueued);
  // Sum of the per-shard resync generations: any shard's fault-driven
  // resync invalidates cached plans (a plan may span shards).
  std::uint64_t resync_generation() const noexcept {
    std::uint64_t total = 0;
    for (const auto& shard : shards_)
      total += shard->engine().resync_generation();
    return total;
  }

  bool idle() const noexcept;
  std::size_t queued() const noexcept;
  // Sum of per-shard in-flight counts (a cross-shard update counts once
  // per shard it is active on).
  std::size_t in_flight() const noexcept;
  // The recent-completion window - shard-local and cross-shard requests in
  // completion order until the ring wraps (see Controller::completed()).
  const std::vector<UpdateMetrics>& completed() const noexcept {
    return completed_.recent();
  }
  // Streaming lifetime aggregation + the recent ring.
  const CompletionLog& completions() const noexcept { return completed_; }
  void set_on_update_done(std::function<void(const UpdateMetrics&)> fn) {
    on_update_done_ = std::move(fn);
  }

  // Sum of Controller::steady_state_entries() over the shards plus the
  // coordinator's own cross-shard bookkeeping; must return to a flat floor
  // whenever the system drains.
  std::size_t steady_state_entries() const noexcept {
    std::size_t total = cross_.size() + pending_cross_.size();
    for (const auto& shard : shards_)
      total += shard->engine().steady_state_entries();
    return total;
  }

  // Aggregated engine stats (sums over shards; max_hold is the max, and
  // max_in_flight_observed is the busiest shard's high-water mark).
  std::size_t max_in_flight_observed() const noexcept;
  std::size_t messages_coalesced() const noexcept;
  std::size_t batches_sent() const noexcept;
  std::size_t timer_flushes() const noexcept;
  std::size_t budget_flushes() const noexcept;
  std::size_t flush_timers_cancelled() const noexcept;
  sim::Duration max_hold() const noexcept;
  std::uint64_t conflict_edges() const noexcept;
  std::uint64_t blocked_submissions() const noexcept;
  std::size_t blocked() const noexcept;

  // Fault-handling counters, summed over the shards (controller.hpp).
  std::size_t timeouts() const noexcept;
  std::size_t resyncs() const noexcept;
  std::size_t resync_frames() const noexcept;
  std::size_t rollbacks() const noexcept;
  std::size_t retries() const noexcept;
  std::size_t resubmissions() const noexcept;

  // Cross-shard protocol observability: updates that spanned shards,
  // rounds whose confirmations were merged, and the summed sync spread
  // (last shard's confirmation minus the first's, per merged round) - the
  // price of the two-phase round barrier.
  std::size_t cross_shard_updates() const noexcept {
    return cross_shard_updates_;
  }
  std::size_t rounds_synced() const noexcept { return rounds_synced_; }
  sim::Duration sync_overhead() const noexcept { return sync_overhead_; }
  // Interval skips taken by speculative round release (controller.hpp),
  // summed over the shards; 0 unless config.speculate with conflict-aware
  // admission.
  std::size_t speculative_releases() const noexcept {
    std::size_t total = 0;
    for (const auto& shard : shards_)
      total += shard->engine().speculative_releases();
    return total;
  }

  // Controller::CoordinationHooks
  void on_round_done(std::uint8_t shard, std::uint64_t token,
                     std::size_t round) override;
  void on_coordinated_done(std::uint8_t shard, std::uint64_t token,
                           UpdateMetrics metrics) override;
  void on_progress(std::uint8_t shard) override;

 private:
  // Aggregation helpers over the per-shard engines: counters sum,
  // high-water marks take the max.
  template <class Get>
  auto sum_over_shards(Get get) const {
    decltype(get(shards_.front()->engine())) total{};
    for (const auto& shard : shards_) total += get(shard->engine());
    return total;
  }
  template <class Get>
  auto max_over_shards(Get get) const {
    decltype(get(shards_.front()->engine())) most{};
    for (const auto& shard : shards_)
      most = std::max(most, get(shard->engine()));
    return most;
  }

  struct CrossUpdate {
    std::vector<std::uint8_t> shards;  // participating, ascending
    std::size_t total_rounds = 0;
    std::size_t confirm_round = 0;  // round currently being confirmed
    std::size_t confirms = 0;       // shards confirmed so far
    sim::SimTime first_confirm = 0;
    std::vector<UpdateMetrics> slices;  // per-shard metrics, as they finish
  };

  void try_start_cross();
  static UpdateMetrics merge_slices(std::vector<UpdateMetrics>& slices);

  sim::ShardedSim& sim_;
  topo::SwitchPartition partition_;
  std::vector<std::unique_ptr<ControllerShard>> shards_;
  std::unordered_map<std::uint64_t, CrossUpdate> cross_;
  std::deque<std::uint64_t> pending_cross_;  // not-yet-started, arrival order
  CompletionLog completed_;
  std::function<void(const UpdateMetrics&)> on_update_done_;
  std::uint64_t next_token_ = 1;
  bool starting_ = false;  // re-entrancy guard for try_start_cross
  // config.speculate, pre-gated on conflict-aware admission.
  bool speculate_ = false;
  std::size_t cross_shard_updates_ = 0;
  std::size_t rounds_synced_ = 0;
  sim::Duration sync_overhead_ = 0;
};

}  // namespace tsu::controller
