// The SDN controller of the paper, reimplemented from its prose (§2):
//
//   "We implement the app ofctl_rest_own.py, which provides the ability to
//    create a message queue at the SDN controller side to enqueue the REST
//    messages ... If the SDN controller starts to process a message, it
//    begins with the first round ... retrieves the corresponding OpenFlow
//    message for every switch in the set and sends them out ... sends a
//    barrier request to every switch of the set and waits for barrier
//    replies. For every barrier reply ... the source switch is removed from
//    the set of switches of the current round ... If the set is empty, the
//    current round finishes and the SDN controller goes on to process the
//    next round ... If the message object does not have a next round, the
//    SDN controller deletes the message from the queue and starts
//    processing the next message."
//
// This implementation generalizes the paper's one-message-at-a-time FSM to
// a concurrent multi-flow engine: up to `max_in_flight` update requests are
// drained from the queue and their rounds progress independently, each
// request tracking its own outstanding-barrier set; barrier replies are
// routed back to the owning request by xid. Concurrency is made safe by the
// admission policy (admission.hpp): conflict-aware admission computes each
// request's touched-rule footprint and only starts it once it overlaps
// nothing in flight, so overlapping updates queue behind their conflicts
// while disjoint ones parallelize. With
// `batch_frames`, all messages bound for the same switch within one
// simulation instant - FlowMods and barrier requests, across all in-flight
// flows - coalesce into a single Batch control frame, the way a production
// controller packs messages into one TCP segment.
//
// `use_barriers = false` gives the reckless variant for the barrier-cost
// ablation (bench E7): all rounds are blasted out back-to-back and a single
// trailing barrier per touched switch detects completion.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "tsu/controller/admission.hpp"
#include "tsu/controller/update_request.hpp"
#include "tsu/proto/messages.hpp"
#include "tsu/sim/simulator.hpp"
#include "tsu/util/ids.hpp"

namespace tsu::controller {

struct ControllerConfig {
  bool use_barriers = true;
  // How many update requests may progress concurrently. 1 reproduces the
  // paper's strictly serializing message queue.
  std::size_t max_in_flight = 1;
  // Coalesce all messages bound for one switch within one simulation
  // instant into a single Batch frame.
  bool batch_frames = false;
  // How requests are admitted into the in-flight set (see admission.hpp):
  // blind capacity-only, rule-level conflict tracking, or global
  // serialization regardless of max_in_flight.
  AdmissionPolicy admission = AdmissionPolicy::kBlind;
};

struct RoundMetrics {
  sim::SimTime started = 0;
  sim::SimTime finished = 0;
  std::size_t flow_mods = 0;
  std::size_t barriers = 0;
};

struct UpdateMetrics {
  std::string name;
  FlowId flow = 0;
  sim::SimTime submitted = 0;
  sim::SimTime started = 0;
  sim::SimTime finished = 0;
  std::vector<RoundMetrics> rounds;
  std::size_t flow_mods_sent = 0;
  std::size_t barriers_sent = 0;

  sim::Duration duration() const noexcept { return finished - started; }
  sim::Duration queueing_delay() const noexcept {
    return started - submitted;
  }
};

class Controller {
 public:
  using SendFn = std::function<void(const proto::Message&)>;

  Controller(sim::Simulator& simulator, ControllerConfig config)
      : sim_(simulator), config_(config), admission_(config.admission) {
    if (config_.max_in_flight == 0) config_.max_in_flight = 1;
  }

  // Registers the outbound channel towards a switch.
  void attach_switch(NodeId node, SendFn send);

  // Inbound dispatch: the per-switch channel delivers replies here.
  void on_message(NodeId from, const proto::Message& message);

  // Enqueues a policy update (the paper's REST message queue); processing
  // starts immediately while fewer than max_in_flight updates are active.
  void submit(UpdateRequest request);

  bool idle() const noexcept { return active_.empty() && queue_.empty(); }
  std::size_t queued() const noexcept { return queue_.size(); }
  std::size_t in_flight() const noexcept { return active_.size(); }
  // High-water mark of concurrently active updates over the run.
  std::size_t max_in_flight_observed() const noexcept {
    return max_in_flight_observed_;
  }
  // Messages that shared a Batch frame with at least one other message.
  std::size_t messages_coalesced() const noexcept {
    return messages_coalesced_;
  }
  std::size_t batches_sent() const noexcept { return batches_sent_; }

  // Admission stats: dependency edges the conflict DAG created and
  // requests that entered the queue blocked on a conflict.
  std::uint64_t conflict_edges() const noexcept {
    return admission_.conflict_edges();
  }
  std::uint64_t blocked_submissions() const noexcept {
    return admission_.blocked_submissions();
  }
  // Pending requests currently blocked on an in-flight or earlier pending
  // conflict (a subset of queued()).
  std::size_t blocked() const noexcept { return admission_.blocked(); }

  // In completion order (identical to submission order when
  // max_in_flight == 1).
  const std::vector<UpdateMetrics>& completed() const noexcept {
    return completed_;
  }

  // Fires whenever an update finishes (used by the executor to stop the
  // simulation as soon as the system quiesces).
  void set_on_update_done(std::function<void(const UpdateMetrics&)> fn) {
    on_update_done_ = std::move(fn);
  }

 private:
  using UpdateId = std::uint64_t;

  struct PendingUpdate {
    UpdateId id = 0;
    UpdateRequest request;
    UpdateMetrics metrics;  // carries the submission timestamp
  };

  struct ActiveUpdate {
    UpdateRequest request;
    UpdateMetrics metrics;
    std::size_t next_round = 0;
    // Outstanding barriers of this update's in-flight round.
    std::size_t waiting = 0;
  };

  void maybe_start_next_request();
  void start_round(UpdateId id);
  void send_round_ops(ActiveUpdate& active, const std::vector<RoundOp>& ops);
  void send_to_switch(NodeId node, proto::Message message);
  void flush_outbox();
  void finish_round(UpdateId id);
  void finish_update(UpdateId id);

  Xid next_xid() noexcept { return xid_counter_++; }

  sim::Simulator& sim_;
  ControllerConfig config_;
  AdmissionQueue admission_;
  std::unordered_map<NodeId, SendFn> switches_;
  // Submitted but not yet started, in arrival order. Under conflict-aware
  // admission a later entry may start before an earlier blocked one.
  std::deque<PendingUpdate> queue_;
  std::unordered_map<UpdateId, ActiveUpdate> active_;
  // Outstanding barrier xid -> (owning update, switch it fences).
  std::unordered_map<Xid, std::pair<UpdateId, NodeId>> waiting_;
  std::vector<UpdateMetrics> completed_;
  std::function<void(const UpdateMetrics&)> on_update_done_;
  Xid xid_counter_ = 1;
  UpdateId update_counter_ = 1;
  std::size_t max_in_flight_observed_ = 0;
  std::size_t messages_coalesced_ = 0;
  std::size_t batches_sent_ = 0;

  // Per-switch messages accumulated within the current instant, flushed by
  // a zero-delay event (batch_frames mode only). Ordered map so the flush
  // order is deterministic.
  std::map<NodeId, std::vector<proto::Message>> outbox_;
  bool flush_scheduled_ = false;
};

}  // namespace tsu::controller
