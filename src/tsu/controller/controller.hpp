// The SDN controller of the paper, reimplemented from its prose (§2):
//
//   "We implement the app ofctl_rest_own.py, which provides the ability to
//    create a message queue at the SDN controller side to enqueue the REST
//    messages ... If the SDN controller starts to process a message, it
//    begins with the first round ... retrieves the corresponding OpenFlow
//    message for every switch in the set and sends them out ... sends a
//    barrier request to every switch of the set and waits for barrier
//    replies. For every barrier reply ... the source switch is removed from
//    the set of switches of the current round ... If the set is empty, the
//    current round finishes and the SDN controller goes on to process the
//    next round ... If the message object does not have a next round, the
//    SDN controller deletes the message from the queue and starts
//    processing the next message."
//
// This implementation generalizes the paper's one-message-at-a-time FSM to
// a concurrent multi-flow engine: up to `max_in_flight` update requests are
// drained from the queue and their rounds progress independently, each
// request tracking its own outstanding-barrier set; barrier replies are
// routed back to the owning request by xid. Concurrency is made safe by the
// admission policy (admission.hpp): conflict-aware admission computes each
// request's touched-rule footprint and only starts it once it overlaps
// nothing in flight, so overlapping updates queue behind their conflicts
// while disjoint ones parallelize.
//
// Outbound messages flow through a per-switch OUTBOX (BatchMode): every
// message bound for one switch - FlowMods and barrier requests, across all
// in-flight flows - accumulates in that switch's outbox and ships as a
// single Batch control frame, the way a production controller packs
// messages into one TCP segment. When the outbox flushes is the mode:
//
//   kOff      every message is its own frame (no outbox).
//   kInstant  a zero-delay event flushes all outboxes, so only messages of
//             the same simulation instant coalesce (the PR-1 behaviour,
//             still reachable via the legacy `batch_frames` bool).
//   kWindow   each outbox holds its messages up to `batch_window` behind a
//             cancellable flush timer, so messages of *different* instants
//             share a frame; the accumulated encoded-byte budget
//             `batch_bytes` (and the frame-size cap) force-flush early.
//   kAdaptive kWindow, but the hold window scales with queue pressure
//             (in-flight + queued updates): an idle control plane - where a
//             round's trailing barrier is provably the last message until
//             its replies return - collapses to an immediate flush, a
//             saturated one holds the full window.
//
// Liveness invariant for every windowed mode: a non-empty outbox always has
// a pending flush event, so a round's barriers reach the switch at most
// `batch_window` after readiness and rounds cannot deadlock - batching
// trades a bounded per-round latency for fewer, larger frames and never
// changes per-switch message order (outboxes are FIFO; the switch unpacks
// batches in order, preserving FlowMod-then-barrier fencing).
//
// `use_barriers = false` gives the reckless variant for the barrier-cost
// ablation (bench E7): all rounds are blasted out back-to-back and a single
// trailing barrier per touched switch detects completion.
//
// SHARDING (PR 4): this class is also the per-shard engine of the sharded
// controller (controller/shard.hpp). A ShardCoordinator partitions the
// switches across N Controllers, forwards shard-local requests verbatim,
// and splits cross-shard requests into per-shard sub-requests submitted
// through submit_coordinated(): a coordinated sub-request enters this
// shard's admission DAG at its global arrival position but is HELD - it
// starts only via start_coordinated() (the coordinator starts it on every
// shard in one instant, once all are admissible with free slots), and after
// each round it confirms to the coordinator and waits for release_round()
// instead of advancing on its own. Xids carry the shard id in their top
// byte (proto::make_shard_xid); shard 0 - the unsharded controller - emits
// exactly the xids it always did.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "tsu/controller/admission.hpp"
#include "tsu/controller/completion_log.hpp"
#include "tsu/controller/plan_cache.hpp"
#include "tsu/controller/update_request.hpp"
#include "tsu/proto/messages.hpp"
#include "tsu/sim/exec_mode.hpp"
#include "tsu/sim/simulator.hpp"
#include "tsu/topo/partition.hpp"
#include "tsu/util/ids.hpp"

namespace tsu::controller {

// When the per-switch outbox flushes; see the file comment.
enum class BatchMode : std::uint8_t {
  kOff = 0,
  kInstant = 1,
  kWindow = 2,
  kAdaptive = 3,
};

const char* to_string(BatchMode mode) noexcept;
std::optional<BatchMode> batch_mode_from_string(std::string_view name);

// When a request's admission footprint leaves the conflict DAG:
//   kRequest  at request completion (the PR 2 behaviour).
//   kRound    per completed round: rules no later round touches are
//             released as soon as their last round's barriers return,
//             shrinking the blocked window for long multi-round updates.
//             Only meaningful under kConflictAware with barriers on.
enum class AdmissionRelease : std::uint8_t {
  kRequest = 0,
  kRound = 1,
};

const char* to_string(AdmissionRelease release) noexcept;
std::optional<AdmissionRelease> admission_release_from_string(
    std::string_view name) noexcept;

// What a liveness timeout does to the update stalled on a silent switch:
//   kWait      keep the update alive and re-drive the switch (periodic
//              retries, then a replay once its reconnect resync confirms)
//              until the barrier returns - installs only move forward.
//   kRollback  abort the update: replay the sent rounds' undo mods in
//              reverse round order (each inverse round barrier-fenced), so
//              the unwind walks back through exactly the forward rounds'
//              checked states; then release the admission footprint and
//              resubmit the request fresh (resubmit_after_rollback).
//              Cross-shard sub-requests and the unwinds themselves always
//              recover kWait-style: a reverse round executed on one shard
//              while a sibling shard still walks forward could leave the
//              forwarding graph in a state no checker ever admitted.
enum class FailureResponse : std::uint8_t {
  kWait = 0,
  kRollback = 1,
};

const char* to_string(FailureResponse response) noexcept;
std::optional<FailureResponse> failure_response_from_string(
    std::string_view name) noexcept;

struct ControllerConfig {
  bool use_barriers = true;
  // How many update requests may progress concurrently. 1 reproduces the
  // paper's strictly serializing message queue.
  std::size_t max_in_flight = 1;
  // Legacy knob predating BatchMode: true upgrades kOff to kInstant (the
  // coalescing it used to select). Layers that let a caller set batch_mode
  // explicitly (config JSON, REST overrides, sim_cli) clear this alias
  // alongside, so an explicit "off" really turns batching off.
  bool batch_frames = false;
  // Outbox flush policy and its two budgets: the hold window for
  // kWindow/kAdaptive and the per-switch encoded-byte force-flush budget.
  BatchMode batch_mode = BatchMode::kOff;
  sim::Duration batch_window = sim::microseconds(500);
  std::size_t batch_bytes = 16 * 1024;
  // How requests are admitted into the in-flight set (see admission.hpp):
  // blind capacity-only, rule-level conflict tracking, or global
  // serialization regardless of max_in_flight.
  AdmissionPolicy admission = AdmissionPolicy::kBlind;
  // When footprints leave the conflict DAG (see AdmissionRelease).
  AdmissionRelease admission_release = AdmissionRelease::kRequest;
  // Memoized update-plan compilation for the open-loop service mode
  // (controller/plan_cache.hpp): repeat submissions of a template reuse its
  // compiled rounds, footprint and pre-encoded frames instead of
  // re-lowering and re-encoding. Provably transparent - cache-on runs are
  // bit-identical to cache-off (the equivalence suite pins it), so "off"
  // exists for that proof and for perf baselines, not for correctness.
  // Read by the service executor; the engine itself just accepts plans.
  bool plan_cache = true;
  // Sharded control plane (controller/shard.hpp): how many controller
  // shards the switches are partitioned across - max_in_flight applies PER
  // SHARD - and how switches map to shards. shards = 1 is the single
  // controller, bit-identical to the pre-sharding engine.
  std::size_t shards = 1;
  topo::PartitionScheme partition = topo::PartitionScheme::kHash;
  // How the sharded clock steps (sim/sharded.hpp): the sequential merger,
  // or parallel epochs on a worker pool between safe horizons. Parallel
  // mode is digest- and oracle-identical to sequential for every seed (the
  // equivalence matrix pins it); it only changes wall-clock time.
  sim::ExecMode exec = sim::ExecMode::kSequential;
  // Worker threads for exec = parallel; 0 picks
  // min(shards, hardware threads).
  std::size_t threads = 0;
  // Speculative round barriers for cross-shard updates (shard.hpp): a
  // sub-request whose footprint the admission DAG proves disjoint from
  // everything live confirms empty rounds without the pacing interval, and
  // barrier replies are processed shard-locally mid-epoch (round/resync
  // completion deferred to the next sync point) instead of stalling the
  // parallel engine. Requires admission = conflict_aware to ever speculate;
  // identical event schedules in both exec modes, so the seq/par
  // equivalence guarantee is preserved. Changes timing versus
  // speculate = false (rounds confirm earlier), hence off by default.
  bool speculate = false;
  // exec = parallel: launch each wave's shard epochs longest-first so idle
  // pool lanes pick up the heaviest backlog (sharded.hpp set_steal).
  // Deterministic and digest-neutral; purely a wall-clock knob.
  bool steal = false;
  // --- fault tolerance (sim/faults.hpp) ---------------------------------
  // Per-switch liveness timeout on outstanding barriers. 0 disables fault
  // handling entirely - no timers, no shadow tables, no resync - keeping
  // the fault-free path bit-identical to a build without the subsystem.
  // Must comfortably exceed the worst-case round RTT *under load*: a
  // timeout below the loaded RTT declares healthy switches dead, and the
  // resulting retry traffic slows rounds further - a spurious-timeout
  // storm that can exhaust the per-shard xid sequence.
  sim::Duration liveness_timeout = 0;
  // Recovery policy when a barrier times out (see FailureResponse).
  FailureResponse failure_response = FailureResponse::kWait;
  // Pause before a rolled-back request is resubmitted; 0 means one
  // liveness_timeout.
  sim::Duration retry_backoff = 0;
  // Resubmit rolled-back requests (else complete them as aborted).
  bool resubmit_after_rollback = true;
};

// The flush policy after legacy-knob normalization: `batch_frames` only
// means kInstant when no explicit mode is set.
inline BatchMode effective_batch_mode(const ControllerConfig& config) noexcept {
  if (config.batch_mode == BatchMode::kOff && config.batch_frames)
    return BatchMode::kInstant;
  return config.batch_mode;
}

// RoundMetrics / UpdateMetrics live in controller/completion_log.hpp,
// together with the bounded CompletionLog that replaced the append-only
// completed-metrics vector.

class Controller {
 public:
  using SendFn = std::function<void(const proto::Message&)>;
  // Pre-encoded variant: a complete frame (xid field patched per send by
  // the channel) instead of a Message. See ControlChannel::send_encoded.
  using SendEncodedFn =
      std::function<void(std::span<const std::byte>, Xid)>;

  Controller(sim::Simulator& simulator, ControllerConfig config)
      : sim_(simulator), config_(config), admission_(config.admission) {
    if (config_.max_in_flight == 0) config_.max_in_flight = 1;
    batch_mode_ = effective_batch_mode(config_);
    // The pre-encoded send path is only byte-transparent when every frame
    // would be its own wire frame anyway (no outbox coalescing) and no
    // shadow-table bookkeeping needs the Message object (no fault
    // tolerance). Otherwise plan submissions fall back to Message sends -
    // still skipping lowering/footprint/encode recomputation.
    encoded_eligible_ =
        batch_mode_ == BatchMode::kOff && config_.liveness_timeout == 0;
    // The recycle stack is a fixed-capacity pool: reserving it here means
    // retire_xid never allocates, so long service runs stay off the heap
    // (the pool would otherwise double its way up during the pre-wrap
    // accumulation phase).
    free_xid_seqs_.reserve(kMaxFreeXids);
  }

  // Registers the outbound channel towards a switch.
  void attach_switch(NodeId node, SendFn send);
  // Registers the pre-encoded send path towards a switch (optional; plan
  // submissions fall back to the Message path for switches without one).
  void attach_switch_encoded(NodeId node, SendEncodedFn send);

  // Inbound dispatch: the per-switch channel delivers replies here.
  void on_message(NodeId from, const proto::Message& message);

  // Enqueues a policy update (the paper's REST message queue); processing
  // starts immediately while fewer than max_in_flight updates are active.
  void submit(UpdateRequest request);

  // Compiled-plan submission (plan_cache.hpp): behaviour-identical to
  // submit() of the plan's canonical request with `priority_class` and
  // `enqueued` applied, but the hot path performs no lowering, no
  // footprint computation and - when eligible - no message encoding. The
  // plan is shared, immutable and typically reused across many
  // submissions.
  void submit_plan(std::shared_ptr<const CompiledPlan> plan,
                   std::uint8_t priority_class,
                   std::optional<sim::SimTime> enqueued);

  // Monotone counter of fault-driven resyncs that rewrote shadow-table
  // state (bumped per reconnect handled). Compiled plans record it at
  // compile time; the service executor's PlanCache discards plans from
  // older generations so a resync can never serve stale pre-encoded
  // frames.
  std::uint64_t resync_generation() const noexcept {
    return resync_generation_;
  }

  bool idle() const noexcept { return active_.empty() && queue_.empty(); }
  std::size_t queued() const noexcept { return queue_.size(); }
  std::size_t in_flight() const noexcept { return active_.size(); }
  // High-water mark of concurrently active updates over the run.
  std::size_t max_in_flight_observed() const noexcept {
    return max_in_flight_observed_;
  }
  // Messages that shared a Batch frame with at least one other message.
  std::size_t messages_coalesced() const noexcept {
    return messages_coalesced_;
  }
  std::size_t batches_sent() const noexcept { return batches_sent_; }

  // Outbox observability (kWindow/kAdaptive): flush counts by trigger,
  // flush timers cancelled by an earlier byte-budget/forced flush, and the
  // longest any message sat in an outbox past readiness. The latency
  // regression suite pins max_hold() <= batch_window.
  std::size_t timer_flushes() const noexcept { return timer_flushes_; }
  std::size_t budget_flushes() const noexcept { return budget_flushes_; }
  std::size_t flush_timers_cancelled() const noexcept {
    return flush_timers_cancelled_;
  }
  sim::Duration max_hold() const noexcept { return max_hold_; }
  BatchMode batch_mode() const noexcept { return batch_mode_; }

  // Admission stats: dependency edges the conflict DAG created and
  // requests that entered the queue blocked on a conflict.
  std::uint64_t conflict_edges() const noexcept {
    return admission_.conflict_edges();
  }
  std::uint64_t blocked_submissions() const noexcept {
    return admission_.blocked_submissions();
  }
  // Pending requests currently blocked on an in-flight or earlier pending
  // conflict (a subset of queued()).
  std::size_t blocked() const noexcept { return admission_.blocked(); }

  // The recent-completion window, in completion order (identical to
  // submission order when max_in_flight == 1) until the ring wraps at
  // CompletionLog::kDefaultRecentCapacity completions. Long-running
  // consumers must use completions().stats() or the on_update_done
  // callback instead of this window.
  const std::vector<UpdateMetrics>& completed() const noexcept {
    return completed_.recent();
  }
  // Streaming lifetime aggregation + the recent ring.
  const CompletionLog& completions() const noexcept { return completed_; }

  // Debug counter for steady-state boundedness: the number of live
  // per-update / per-xid bookkeeping entries across every internal map.
  // After any workload fully completes - including timeout, retry,
  // rollback and crash-resync paths - this must return to a flat floor
  // (0 for a standalone controller at idle); controller_test pins it.
  // Deliberately EXCLUDES the monotone-by-design pools whose growth is
  // independently bounded: the retired-xid free list (<= kMaxFreeXids),
  // timed-out-xid leaks (bounded by the timeout count, see next_xid) and
  // shadow tables (bounded by switch-table size).
  std::size_t steady_state_entries() const noexcept {
    std::size_t unfenced = 0;
    for (const auto& [node, sends] : unfenced_) unfenced += sends.size();
    std::size_t outboxed = 0;
    for (const auto& [node, box] : outbox_) outboxed += box.entries.size();
    return queue_.size() + active_.size() + waiting_.size() +
           coordinated_ids_.size() + liveness_timers_.size() +
           barrier_seq_.size() + full_resync_.size() +
           resync_waiting_.size() + rollback_ctx_.size() +
           admission_.live() + admission_.index_rules() + unfenced +
           outboxed;
  }

  // Fires whenever an update finishes (used by the executor to stop the
  // simulation as soon as the system quiesces).
  void set_on_update_done(std::function<void(const UpdateMetrics&)> fn) {
    on_update_done_ = std::move(fn);
  }

  // --- fault tolerance (sim/faults.hpp) ---------------------------------
  // Enabled by a nonzero liveness_timeout; everything below is inert (and
  // schedules no events, so the fault-free digests stay bit-identical)
  // when disabled.
  bool fault_tolerance() const noexcept {
    return config_.liveness_timeout > 0;
  }
  // Mirrors an out-of-band install (the executor's initial-rule seeding,
  // which writes switch tables directly) into the shadow tables, so a
  // crash resync reconstructs pre-update state too.
  void seed_shadow(NodeId node, const proto::FlowMod& mod);
  // Fires when a reconnected switch's resync is barrier-confirmed: it
  // provably holds the shadow image again. The executor uses this to
  // return the switch to service and clock the recovery.
  void set_on_switch_resynced(std::function<void(NodeId)> fn) {
    on_switch_resynced_ = std::move(fn);
  }
  // Fault-handling counters: liveness timeouts fired, resyncs completed,
  // resync FlowMods pushed, rollbacks begun, per-switch barrier retries,
  // and rolled-back requests resubmitted.
  std::size_t timeouts() const noexcept { return timeouts_; }
  std::size_t resyncs() const noexcept { return resyncs_; }
  std::size_t resync_frames() const noexcept { return resync_frames_; }
  std::size_t rollbacks() const noexcept { return rollbacks_; }
  std::size_t retries() const noexcept { return retries_; }
  std::size_t resubmissions() const noexcept { return resubmissions_; }

  // --- sharded operation (driven by the ShardCoordinator; shard.hpp) ----
  // A cross-shard update runs as per-shard sub-requests whose rounds
  // advance in lockstep: after every round the shard confirms completion
  // and holds until release_round(), so no shard releases round k+1
  // barriers before every shard confirmed round k's installs.
  class CoordinationHooks {
   public:
    virtual ~CoordinationHooks() = default;
    // Round `round` of sub-request `token` completed on shard `shard`.
    virtual void on_round_done(std::uint8_t shard, std::uint64_t token,
                               std::size_t round) = 0;
    // The shard-local slice of `token` ran out of rounds; `metrics` is
    // this shard's slice of the update's timings and counters.
    virtual void on_coordinated_done(std::uint8_t shard, std::uint64_t token,
                                     UpdateMetrics metrics) = 0;
    // Capacity or admissibility changed on `shard`; held sub-requests may
    // now be startable.
    virtual void on_progress(std::uint8_t shard) = 0;
  };

  void set_shard(std::uint8_t shard_id, CoordinationHooks* hooks) noexcept {
    shard_id_ = shard_id;
    hooks_ = hooks;
  }
  std::uint8_t shard_id() const noexcept { return shard_id_; }

  // Registers a HELD sub-request of a cross-shard update: it enters the
  // admission DAG at its global arrival position (so per-shard dependency
  // edges stay consistent with one global arrival order) but only starts
  // through start_coordinated().
  void submit_coordinated(UpdateRequest request, std::uint64_t token);
  bool coordinated_admissible(std::uint64_t token) const noexcept;
  bool has_capacity() const noexcept {
    return active_.size() < config_.max_in_flight;
  }
  // Starts a held sub-request. The coordinator only calls this when every
  // participating shard is admissible AND has a free slot, and then starts
  // all of them in the same instant - atomic capacity acquisition, so two
  // cross-shard updates can never deadlock on partially grabbed slots.
  // `speculative` marks a DAG-proven-disjoint update (every shard's slice
  // uncontended at start) eligible for speculative round release.
  void start_coordinated(std::uint64_t token, bool speculative = false);
  // Releases the two-phase round barrier: starts the sub-request's next
  // round (after the request's inter-round interval). A speculative
  // sub-request whose next round is EMPTY skips the interval and confirms
  // synchronously - an empty round installs nothing, so pacing it serves
  // nothing, and each skip removes one interval-timer event (a guaranteed
  // horizon stall under the parallel engine).
  void release_round(std::uint64_t token);
  // True while `token` is live here and carries no conflict edge in this
  // shard's admission DAG slice - the coordinator's speculation gate.
  bool coordinated_uncontended(std::uint64_t token) const noexcept;
  // Interval skips taken by speculative round releases.
  std::size_t speculative_releases() const noexcept {
    return speculative_releases_;
  }

 private:
  using UpdateId = std::uint64_t;

  struct PendingUpdate {
    UpdateId id = 0;
    // Plain submissions own their request here. Plan-backed submissions
    // leave it EMPTY except priority_class and enqueued (the two
    // per-submission parameters, stashed so the start scan and a rollback
    // resubmission can read them back) - the plan carries the rounds.
    UpdateRequest request;
    UpdateMetrics metrics;  // carries the submission timestamp
    std::shared_ptr<const CompiledPlan> plan;
    // Coordinated sub-request: held until the ShardCoordinator starts it.
    bool held = false;
    // Set at start_coordinated when the whole update is DAG-disjoint.
    bool speculative = false;
    std::uint64_t token = 0;
  };

  struct ActiveUpdate {
    UpdateRequest request;
    UpdateMetrics metrics;
    // Set for plan-backed updates; request_of() then reads the plan's
    // canonical request and `request` only carries the per-submission
    // priority_class/enqueued stash.
    std::shared_ptr<const CompiledPlan> plan;
    std::size_t next_round = 0;
    // Outstanding barriers of this update's in-flight round.
    std::size_t waiting = 0;
    // Cross-shard sub-request: rounds gated by the coordinator.
    bool coordinated = false;
    // DAG-proven disjoint at start: empty rounds release speculatively.
    bool speculative = false;
    std::uint64_t token = 0;
    // Controller-originated unwind of a rolled-back update: bypasses
    // admission (the aborted update's footprint still covers its rules)
    // and never rolls back itself (double faults recover kWait-style).
    bool system = false;
    // admission_release = round: footprint rules keyed by the last round
    // touching them; slot k is released when round k completes. Empty when
    // per-round release is off.
    std::vector<std::vector<RuleRef>> release_plan;
  };

  // Why an outbox shipped; drives the observability counters.
  enum class FlushTrigger { kInstant, kTimer, kBudget };

  // The request a live update executes: the plan's canonical request for
  // plan-backed updates, the owned one otherwise.
  static const UpdateRequest& request_of(const ActiveUpdate& active) noexcept {
    return active.plan != nullptr ? active.plan->request : active.request;
  }

  void maybe_start_next_request();
  void start_pending(std::vector<PendingUpdate>::iterator it);
  void start_round(UpdateId id);
  void send_round_ops(ActiveUpdate& active, std::size_t round);
  // One barrier of a round: registers the outstanding xid and ships the
  // (possibly pre-encoded) barrier request to `node`.
  void send_round_barrier(ActiveUpdate& active, UpdateId id, NodeId node);
  void send_to_switch(NodeId node, proto::Message message);
  void flush_switch(NodeId node, FlushTrigger trigger);
  void flush_all(FlushTrigger trigger);
  sim::Duration adaptive_window() const noexcept;
  void finish_round(UpdateId id);
  void finish_update(UpdateId id);
  void release_completed_round_rules(UpdateId id);

  // --- fault tolerance ---------------------------------------------------
  // One FlowMod sent but not yet fenced by a barrier reply (FIFO channels:
  // a reply fences everything sent before its barrier). These keys are the
  // only rules a retained-state reconnect needs corrected.
  struct UnfencedSend {
    std::uint64_t seq = 0;
    std::uint8_t table = 0;
    std::uint16_t priority = 0;
    flow::Match match;
  };
  // Bookkeeping of one in-flight rollback: the aborted update's identity
  // (its admission footprint stays held until the unwind completes), the
  // original request for resubmission, and its metrics for the
  // aborted-without-resubmit completion record.
  struct RollbackCtx {
    UpdateId original = 0;
    UpdateRequest request;
    UpdateMetrics metrics;
  };
  void record_send(NodeId node, const proto::FlowMod& mod);
  void fence_barrier(NodeId node, Xid xid);
  void arm_liveness(Xid xid);
  void on_liveness_timeout(Xid xid);
  void retry_update_switch(UpdateId id, NodeId node);
  void handle_reconnect(NodeId from, bool has_state);
  void finish_resync(NodeId node, Xid xid);
  void begin_rollback(UpdateId id);
  void finish_rollback(UpdateId id);
  sim::Duration effective_backoff() const noexcept {
    return config_.retry_backoff > 0 ? config_.retry_backoff
                                     : config_.liveness_timeout;
  }

  // Xid lifecycle. The 24-bit per-shard sequence used to hard-abort on
  // wrap, which killed long soaks. Instead, retired sequence numbers are
  // recycled: fresh numbers come from the counter until it exhausts, then
  // from the free list of provably dead xids. An xid is retired ONLY when
  // no stale traffic can still route on it:
  //   - FlowMod/Batch xids: immediately after send - nothing ever keys on
  //     them (replies route by barrier xid; errors only log).
  //   - Barrier/resync xids: on clean reply processing, after their
  //     liveness timer is cancelled.
  //   - Timed-out, retried, rolled-back or abandoned-resync xids: NEVER -
  //     the switch may still emit the late reply, which must keep hitting
  //     the "late barrier" path instead of a recycled xid's new owner.
  //     (Leaks are bounded by the timeout count.)
  // Pre-wrap, every emitted xid is identical to the pre-recycling engine's,
  // so existing digests are unaffected.
  Xid next_xid() noexcept {
    if ((xid_counter_ & ~proto::kXidSeqMask) == 0)
      return proto::make_shard_xid(shard_id_, xid_counter_++);
    TSU_ASSERT_MSG(!free_xid_seqs_.empty(),
                   "per-shard xid sequence exhausted with no retired xids: "
                   ">2^24 concurrently live xids");
    const Xid seq = free_xid_seqs_.back();
    free_xid_seqs_.pop_back();
    return proto::make_shard_xid(shard_id_, seq);
  }
  void retire_xid(Xid xid) {
    // The cap only bounds pool memory on huge pre-wrap runs; recycling
    // keeps the pool topped up regardless.
    if (free_xid_seqs_.size() < kMaxFreeXids)
      free_xid_seqs_.push_back(xid & proto::kXidSeqMask);
  }
  // Cancels the pending liveness timer of a cleanly completed barrier so
  // (a) the dead closure is released now and (b) the xid can be recycled
  // without the stale timer firing on its next owner.
  void disarm_liveness(Xid xid) {
    const auto it = liveness_timers_.find(xid);
    if (it == liveness_timers_.end()) return;
    sim_.cancel(it->second);
    liveness_timers_.erase(it);
  }

 public:
  // Test hook: jump the 24-bit sequence to its end (minus `remaining`
  // fresh values) so tests can exercise wrap recycling in bounded time.
  void exhaust_xid_space_for_test(std::uint32_t remaining = 0) noexcept {
    xid_counter_ = proto::kXidSeqMask + 1 - remaining;
  }
  std::size_t retired_xids() const noexcept { return free_xid_seqs_.size(); }

 private:
  // Fixed capacity of the retired-xid recycle stack, fully reserved at
  // construction (256 KiB per engine). Caps the post-wrap concurrency the
  // engine can sustain at 64k simultaneously live xids - orders of
  // magnitude above any simulated regime - in exchange for an
  // allocation-free retire path.
  static constexpr std::size_t kMaxFreeXids = 1u << 16;

  using ActiveMap = std::unordered_map<UpdateId, ActiveUpdate>;
  using WaitingMap = std::unordered_map<Xid, std::pair<UpdateId, NodeId>>;

  // Node-handle pools for the per-update / per-barrier maps, mirroring the
  // AdmissionQueue's: finished entries are extracted (so the live-size
  // contracts behind steady_state_entries() still hold) and their nodes -
  // string/vector capacity included - reused by the next insert, making
  // steady-state submission churn allocation-free.
  ActiveUpdate& insert_active(UpdateId id);
  void recycle_active(ActiveMap::iterator it);
  void insert_waiting(Xid xid, UpdateId id, NodeId node);
  void recycle_waiting(WaitingMap::iterator it);

  sim::Simulator& sim_;
  ControllerConfig config_;
  AdmissionQueue admission_;
  std::unordered_map<NodeId, SendFn> switches_;
  // Pre-encoded send paths (plan submissions only); keyed like switches_.
  std::unordered_map<NodeId, SendEncodedFn> encoded_switches_;
  // Whether plan-backed sends may use the pre-encoded path (computed at
  // construction; see the constructor comment).
  bool encoded_eligible_ = false;
  // Submitted but not yet started, in arrival order. Under conflict-aware
  // admission a later entry may start before an earlier blocked one.
  // A vector (not deque): plan-backed entries hold no heap state, so warm
  // slots are free to fill, and libstdc++'s deque would allocate a fresh
  // chunk every few dozen push/pop cycles at steady state.
  std::vector<PendingUpdate> queue_;
  ActiveMap active_;
  // Outstanding barrier xid -> (owning update, switch it fences).
  WaitingMap waiting_;
  std::vector<ActiveMap::node_type> active_pool_;
  std::vector<WaitingMap::node_type> waiting_pool_;
  // Per-round release staging: the completed round's slice is copied here
  // (capacities reused on both sides) before admission release can rehash
  // active_.
  std::vector<RuleRef> release_rules_scratch_;
  CompletionLog completed_;
  std::function<void(const UpdateMetrics&)> on_update_done_;
  // Sharding: this engine's shard id (tags xids) and the coordinator's
  // hooks; both unset when the controller runs standalone.
  std::uint8_t shard_id_ = 0;
  CoordinationHooks* hooks_ = nullptr;
  // Coordinated sub-requests live (pending or active) on this shard.
  std::unordered_map<std::uint64_t, UpdateId> coordinated_ids_;
  Xid xid_counter_ = 1;
  // Retired 24-bit sequence numbers available for reuse (see next_xid).
  std::vector<Xid> free_xid_seqs_;
  // Pending liveness timer per outstanding barrier xid, so clean
  // completions can cancel instead of leaving a stale timer to no-op.
  std::unordered_map<Xid, sim::EventId> liveness_timers_;
  UpdateId update_counter_ = 1;
  std::size_t max_in_flight_observed_ = 0;
  std::size_t speculative_releases_ = 0;
  std::size_t messages_coalesced_ = 0;
  std::size_t batches_sent_ = 0;
  std::size_t timer_flushes_ = 0;
  std::size_t budget_flushes_ = 0;
  std::size_t flush_timers_cancelled_ = 0;
  sim::Duration max_hold_ = 0;

  // One pending message of a per-switch outbox: readiness instant and
  // encoded size, so flushes can account hold latency and byte budgets.
  struct OutboxEntry {
    proto::Message message;
    sim::SimTime enqueued = 0;
    std::size_t bytes = 0;
  };
  struct Outbox {
    std::vector<OutboxEntry> entries;
    std::size_t bytes = 0;
    // Cancellable per-switch flush timer (kWindow/kAdaptive). A budget or
    // forced flush cancels it; the lazy-cancel event queue compacts the
    // dead slots (see sim/event_queue.hpp).
    bool timer_armed = false;
    sim::EventId timer = 0;
  };

  // Normalized flush policy (legacy batch_frames folded in at
  // construction). Ordered map so flush-all order is deterministic.
  BatchMode batch_mode_ = BatchMode::kOff;
  std::map<NodeId, Outbox> outbox_;
  // Reused flush staging buffer: capacities circulate between it and the
  // outboxes, so steady-state flushes stop allocating at high-water size.
  std::vector<OutboxEntry> flush_scratch_;
  bool flush_scheduled_ = false;  // kInstant: one zero-delay flush-all event

  // --- fault tolerance (all empty and untouched when disabled) ----------
  // Shadow tables: the rule state every send has committed each switch to,
  // applied at SEND time through the same proto::apply_flow_mod the switch
  // runs at completion. Once the switch's inbox drains, table == shadow;
  // resync replays the shadow after a crash. Inner map ordered so resync
  // replay order is deterministic.
  std::unordered_map<NodeId, std::map<std::uint8_t, flow::FlowTable>> shadow_;
  std::unordered_map<NodeId, std::deque<UnfencedSend>> unfenced_;
  std::unordered_map<NodeId, std::uint64_t> send_seq_;
  // Barrier xid -> per-switch send sequence it fences (recorded at barrier
  // send; the reply clears the unfenced prefix up to it).
  std::unordered_map<Xid, std::uint64_t> barrier_seq_;
  // Switches with an unfenced non-strict DELETE: the shadow cannot name
  // what a retained table might still hold, so their resync replays the
  // full image plus corrective strict deletes.
  std::unordered_set<NodeId> full_resync_;
  // In-flight resync barriers, by xid, and in-flight rollback unwinds, by
  // the unwind's update id.
  std::unordered_map<Xid, NodeId> resync_waiting_;
  std::unordered_map<UpdateId, RollbackCtx> rollback_ctx_;
  std::function<void(NodeId)> on_switch_resynced_;
  // Bumped once per handle_reconnect: shadow state was rewritten, so any
  // plan compiled earlier may describe a world the switches no longer
  // hold. See resync_generation().
  std::uint64_t resync_generation_ = 0;
  std::size_t timeouts_ = 0;
  std::size_t resyncs_ = 0;
  std::size_t resync_frames_ = 0;
  std::size_t rollbacks_ = 0;
  std::size_t retries_ = 0;
  std::size_t resubmissions_ = 0;
};

}  // namespace tsu::controller
