// The SDN controller of the paper, reimplemented from its prose (§2):
//
//   "We implement the app ofctl_rest_own.py, which provides the ability to
//    create a message queue at the SDN controller side to enqueue the REST
//    messages ... If the SDN controller starts to process a message, it
//    begins with the first round ... retrieves the corresponding OpenFlow
//    message for every switch in the set and sends them out ... sends a
//    barrier request to every switch of the set and waits for barrier
//    replies. For every barrier reply ... the source switch is removed from
//    the set of switches of the current round ... If the set is empty, the
//    current round finishes and the SDN controller goes on to process the
//    next round ... If the message object does not have a next round, the
//    SDN controller deletes the message from the queue and starts
//    processing the next message."
//
// `use_barriers = false` gives the reckless variant for the barrier-cost
// ablation (bench E7): all rounds are blasted out back-to-back and a single
// trailing barrier per touched switch detects completion.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "tsu/controller/update_request.hpp"
#include "tsu/proto/messages.hpp"
#include "tsu/sim/simulator.hpp"
#include "tsu/util/ids.hpp"

namespace tsu::controller {

struct ControllerConfig {
  bool use_barriers = true;
};

struct RoundMetrics {
  sim::SimTime started = 0;
  sim::SimTime finished = 0;
  std::size_t flow_mods = 0;
  std::size_t barriers = 0;
};

struct UpdateMetrics {
  std::string name;
  sim::SimTime submitted = 0;
  sim::SimTime started = 0;
  sim::SimTime finished = 0;
  std::vector<RoundMetrics> rounds;
  std::size_t flow_mods_sent = 0;
  std::size_t barriers_sent = 0;

  sim::Duration duration() const noexcept { return finished - started; }
  sim::Duration queueing_delay() const noexcept {
    return started - submitted;
  }
};

class Controller {
 public:
  using SendFn = std::function<void(const proto::Message&)>;

  Controller(sim::Simulator& simulator, ControllerConfig config)
      : sim_(simulator), config_(config) {}

  // Registers the outbound channel towards a switch.
  void attach_switch(NodeId node, SendFn send);

  // Inbound dispatch: the per-switch channel delivers replies here.
  void on_message(NodeId from, const proto::Message& message);

  // Enqueues a policy update (the paper's REST message queue); processing
  // starts immediately when the controller is idle.
  void submit(UpdateRequest request);

  bool idle() const noexcept { return !active_.has_value() && queue_.empty(); }
  std::size_t queued() const noexcept { return queue_.size(); }

  const std::vector<UpdateMetrics>& completed() const noexcept {
    return completed_;
  }

  // Fires whenever an update finishes (used by the executor to stop the
  // simulation as soon as the system quiesces).
  void set_on_update_done(std::function<void(const UpdateMetrics&)> fn) {
    on_update_done_ = std::move(fn);
  }

 private:
  struct ActiveUpdate {
    UpdateRequest request;
    UpdateMetrics metrics;
    std::size_t next_round = 0;
    // Outstanding barrier xids of the in-flight round -> switch node.
    std::unordered_map<Xid, NodeId> waiting;
  };

  void maybe_start_next_request();
  void start_round();
  void send_round_ops(const std::vector<RoundOp>& ops);
  void finish_round();
  void finish_update();

  Xid next_xid() noexcept { return xid_counter_++; }

  sim::Simulator& sim_;
  ControllerConfig config_;
  std::unordered_map<NodeId, SendFn> switches_;
  std::deque<UpdateRequest> queue_;
  // Parallel to queue_: metrics stubs carrying the submission timestamps.
  std::deque<UpdateMetrics> submitted_metrics_;
  std::optional<ActiveUpdate> active_;
  std::vector<UpdateMetrics> completed_;
  std::function<void(const UpdateMetrics&)> on_update_done_;
  Xid xid_counter_ = 1;
};

}  // namespace tsu::controller
