#include "tsu/controller/update_request.hpp"

namespace tsu::controller {

namespace {

proto::FlowMod forward_mod(proto::FlowModCommand command, FlowId flow,
                           std::uint16_t priority, NodeId next) {
  proto::FlowMod mod;
  mod.command = command;
  mod.priority = priority;
  mod.match = flow::Match::exact_flow(flow);
  mod.action = flow::Action::forward(next);
  return mod;
}

// The rule node `v` held for `flow` before the update: forward along the
// old path, or deliver when `v` is the old path's egress.
proto::FlowMod old_rule_mod(const update::Instance& inst, NodeId v,
                            proto::FlowModCommand command, FlowId flow,
                            std::uint16_t priority) {
  proto::FlowMod mod;
  mod.command = command;
  mod.priority = priority;
  mod.match = flow::Match::exact_flow(flow);
  const NodeId old_next = inst.old_next(v);
  mod.action = old_next == kInvalidNode ? flow::Action::deliver()
                                        : flow::Action::forward(old_next);
  return mod;
}

// The inverse of one lowered round op against the pre-update state; drives
// the controller's rollback of partially installed updates.
proto::FlowMod undo_of(const update::Instance& inst, NodeId v,
                       const proto::FlowMod& mod, FlowId flow,
                       std::uint16_t priority) {
  switch (mod.command) {
    case proto::FlowModCommand::kAdd: {
      // A new-only node gained a rule it never had: undo deletes it.
      proto::FlowMod undo;
      undo.command = proto::FlowModCommand::kDeleteStrict;
      undo.priority = priority;
      undo.match = flow::Match::exact_flow(flow);
      return undo;
    }
    case proto::FlowModCommand::kModify:
      // A both-path node was repointed: undo points it back.
      return old_rule_mod(inst, v, proto::FlowModCommand::kModify, flow,
                          priority);
    default:
      // Cleanup deleted the old rule: undo reinstates it.
      return old_rule_mod(inst, v, proto::FlowModCommand::kAdd, flow,
                          priority);
  }
}

}  // namespace

std::vector<RoundOp> initial_rules(const update::Instance& inst, FlowId flow,
                                   std::uint16_t priority) {
  std::vector<RoundOp> ops;
  const graph::Path& path = inst.old_path();
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    ops.push_back(RoundOp{
        path[i], forward_mod(proto::FlowModCommand::kAdd, flow, priority,
                             path[i + 1]),
        {}});
  }
  // Destination delivers to its attached host.
  proto::FlowMod deliver;
  deliver.command = proto::FlowModCommand::kAdd;
  deliver.priority = priority;
  deliver.match = flow::Match::exact_flow(flow);
  deliver.action = flow::Action::deliver();
  ops.push_back(RoundOp{path.back(), deliver, {}});
  return ops;
}

UpdateRequest request_from_schedule(const update::Instance& inst,
                                    const update::Schedule& schedule,
                                    FlowId flow, std::uint16_t priority,
                                    sim::Duration interval) {
  UpdateRequest request;
  request.name = schedule.algorithm;
  request.flow = flow;
  request.interval = interval;

  for (const update::Round& round : schedule.rounds) {
    std::vector<RoundOp> ops;
    ops.reserve(round.size());
    for (const NodeId v : round) {
      const proto::FlowModCommand command =
          inst.role(v) == update::NodeRole::kNewOnly
              ? proto::FlowModCommand::kAdd
              : proto::FlowModCommand::kModify;
      RoundOp op{v, forward_mod(command, flow, priority, inst.new_next(v)),
                 {}};
      op.undo = undo_of(inst, v, op.mod, flow, priority);
      ops.push_back(std::move(op));
    }
    request.rounds.push_back(std::move(ops));
  }

  if (!schedule.cleanup.empty()) {
    std::vector<RoundOp> ops;
    ops.reserve(schedule.cleanup.size());
    for (const NodeId v : schedule.cleanup) {
      proto::FlowMod mod;
      mod.command = proto::FlowModCommand::kDeleteStrict;
      mod.priority = priority;
      mod.match = flow::Match::exact_flow(flow);
      RoundOp op{v, std::move(mod), {}};
      op.undo = undo_of(inst, v, op.mod, flow, priority);
      ops.push_back(std::move(op));
    }
    request.rounds.push_back(std::move(ops));
  }

  return request;
}

UpdateRequest request_from_merged(
    const std::vector<const update::Instance*>& policies,
    const std::vector<const update::Schedule*>& schedules,
    const update::MergedSchedule& merged, const std::vector<FlowId>& flows,
    std::uint16_t priority, sim::Duration interval) {
  TSU_ASSERT(policies.size() == flows.size());
  TSU_ASSERT(policies.size() == schedules.size());

  UpdateRequest request;
  request.name = "merged(" + std::to_string(policies.size()) + " policies)";
  request.flow = flows.empty() ? 0 : flows.front();
  request.interval = interval;

  for (const update::MergedRound& round : merged.rounds) {
    std::vector<RoundOp> ops;
    ops.reserve(round.ops.size());
    for (const auto& [policy, node] : round.ops) {
      TSU_ASSERT(policy < policies.size());
      const update::Instance& inst = *policies[policy];
      const proto::FlowModCommand command =
          inst.role(node) == update::NodeRole::kNewOnly
              ? proto::FlowModCommand::kAdd
              : proto::FlowModCommand::kModify;
      RoundOp op{node, forward_mod(command, flows[policy], priority,
                                   inst.new_next(node)),
                 {}};
      op.undo = undo_of(inst, node, op.mod, flows[policy], priority);
      ops.push_back(std::move(op));
    }
    request.rounds.push_back(std::move(ops));
  }

  // One trailing cleanup round for everything deletable.
  std::vector<RoundOp> cleanup;
  for (std::size_t policy = 0; policy < policies.size(); ++policy) {
    for (const NodeId v : schedules[policy]->cleanup) {
      proto::FlowMod mod;
      mod.command = proto::FlowModCommand::kDeleteStrict;
      mod.priority = priority;
      mod.match = flow::Match::exact_flow(flows[policy]);
      RoundOp op{v, std::move(mod), {}};
      op.undo = undo_of(*policies[policy], v, op.mod, flows[policy], priority);
      cleanup.push_back(std::move(op));
    }
  }
  if (!cleanup.empty()) request.rounds.push_back(std::move(cleanup));

  return request;
}

}  // namespace tsu::controller
