// Per-update completion metrics and the bounded completion log.
//
// The controller used to keep every finished update's UpdateMetrics in an
// append-only vector - fine for a closed-loop run that reads the results at
// the end, fatal for the open-loop service mode where millions of updates
// complete over a run's lifetime. CompletionLog replaces that vector with
// the steady-state-safe split:
//
//   * streaming aggregation (CompletionStats): counters, Welford summaries
//     and fixed-footprint log2 histograms updated per completion - O(1)
//     memory regardless of how many updates ever finished;
//   * a fixed-capacity recent-completion ring: the last `recent_capacity`
//     UpdateMetrics, for debugging, live stats snapshots and closed-loop
//     tests. Until the ring wraps its storage IS the full history in
//     completion order, so short runs observe exactly what the old vector
//     held (bit-identical closed-loop results).
//
// Ring slots are overwritten in place (std::string/vector capacity is
// reused), so a saturated steady state stops allocating here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tsu/sim/time.hpp"
#include "tsu/stats/histogram.hpp"
#include "tsu/stats/summary.hpp"
#include "tsu/util/ids.hpp"

namespace tsu::controller {

struct RoundMetrics {
  sim::SimTime started = 0;
  sim::SimTime finished = 0;
  std::size_t flow_mods = 0;
  std::size_t barriers = 0;
};

struct UpdateMetrics {
  std::string name;
  FlowId flow = 0;
  // Admission ordering class (0 = highest priority; see
  // UpdateRequest::priority_class).
  std::uint8_t priority_class = 0;
  // When the request entered the serving system. For closed-loop
  // submissions this equals `submitted`; the open-loop service mode stamps
  // the arrival instant so `admission_wait()` covers time spent in the
  // pending queue and rate limiter too.
  sim::SimTime enqueued = 0;
  sim::SimTime submitted = 0;
  sim::SimTime started = 0;
  sim::SimTime finished = 0;
  std::vector<RoundMetrics> rounds;
  std::size_t flow_mods_sent = 0;
  std::size_t barriers_sent = 0;
  // The request was rolled back and not resubmitted
  // (failure_response = rollback, resubmit_after_rollback = false): its
  // switches are back in the pre-update state.
  bool aborted = false;

  sim::Duration duration() const noexcept { return finished - started; }
  sim::Duration queueing_delay() const noexcept {
    return started - submitted;
  }
  // Arrival -> first FlowMod: queueing_delay() plus any service-mode
  // backpressure wait.
  sim::Duration admission_wait() const noexcept { return started - enqueued; }
};

// Streaming aggregate over every completion ever recorded: O(1) memory.
struct CompletionStats {
  std::uint64_t count = 0;
  std::uint64_t aborted = 0;
  std::uint64_t flow_mods_sent = 0;
  std::uint64_t barriers_sent = 0;
  std::uint64_t rounds = 0;
  sim::SimTime first_finished = 0;
  sim::SimTime last_finished = 0;
  stats::Summary duration_ms;
  stats::Summary wait_ms;  // admission_wait(), arrival -> start
  stats::LogHistogram duration_ns;
  stats::LogHistogram wait_ns;
};

class CompletionLog {
 public:
  static constexpr std::size_t kDefaultRecentCapacity = 256;

  explicit CompletionLog(
      std::size_t recent_capacity = kDefaultRecentCapacity)
      : capacity_(recent_capacity == 0 ? 1 : recent_capacity) {}

  // Folds the completion into the streaming stats and stores it in the
  // ring (overwriting the oldest entry once full). Returns a reference to
  // the stored entry - stable until `capacity_` further completions.
  // Takes a const reference on purpose: the wrapped-ring path copy-assigns
  // into the evicted slot so the slot's string/vector capacity is reused
  // AND the caller's buffers survive for its own recycling - a move would
  // free the slot's capacity and steal the caller's, reintroducing
  // steady-state allocation on both sides.
  const UpdateMetrics& record(const UpdateMetrics& metrics) {
    stats_.count += 1;
    if (metrics.aborted) stats_.aborted += 1;
    stats_.flow_mods_sent += metrics.flow_mods_sent;
    stats_.barriers_sent += metrics.barriers_sent;
    stats_.rounds += metrics.rounds.size();
    if (stats_.count == 1) stats_.first_finished = metrics.finished;
    stats_.last_finished = metrics.finished;
    const auto duration = static_cast<double>(metrics.duration());
    const auto wait = static_cast<double>(metrics.admission_wait());
    stats_.duration_ms.add(duration / 1e6);
    stats_.wait_ms.add(wait / 1e6);
    stats_.duration_ns.add(duration);
    stats_.wait_ns.add(wait);
    if (ring_.size() < capacity_) {
      ring_.push_back(metrics);
      return ring_.back();
    }
    UpdateMetrics& slot = ring_[next_];
    slot = metrics;
    next_ = (next_ + 1) % capacity_;
    return slot;
  }

  const CompletionStats& stats() const noexcept { return stats_; }
  std::uint64_t count() const noexcept { return stats_.count; }
  std::size_t recent_capacity() const noexcept { return capacity_; }
  // True once completions have been evicted from the ring: `recent()` is
  // then a rotated window, no longer the full history.
  bool wrapped() const noexcept { return stats_.count > capacity_; }

  // The ring's storage. Until wrapped(), this is every completion in
  // completion order; afterwards it holds the `capacity_` most recent
  // completions with the oldest at index `next_` (rotated).
  const std::vector<UpdateMetrics>& recent() const noexcept { return ring_; }

  // The i-th most recently recorded completion (0 = newest). Precondition:
  // i < recent().size().
  const UpdateMetrics& recent_back(std::size_t i) const noexcept {
    const std::size_t newest =
        (next_ + ring_.size() - 1 - i) % ring_.size();
    return ring_[newest];
  }

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  // slot the next eviction overwrites
  std::vector<UpdateMetrics> ring_;
  CompletionStats stats_;
};

}  // namespace tsu::controller
