#!/usr/bin/env python3
"""CI perf gate: compare fresh bench JSON against the committed baseline.

Usage:
    check_bench_regression.py BASELINE.json FRESH.json [FRESH.json ...]

The baseline (BENCH_7.json) maps a section name per bench binary to the
document that binary writes with --json:

    { "bench_queue": {...}, "bench_multi_policy": {...} }

Each fresh document is matched to its baseline section by the document's
"bench" identifier string. Two objects of each document are gated;
everything else in the JSON is trajectory data for humans.

The "hotpath" object:

  * <scenario>.ns_per_event      fails when the fresh value exceeds the
                                 baseline by more than the tolerance
                                 (default 10%; override with the
                                 TSU_BENCH_NS_TOLERANCE env var, e.g.
                                 "0.25" for 25% - CI runners are noisy,
                                 local baselines are not).
  * <scenario>.steady_allocs     fails on ANY increase. The steady state
                                 is allocation-free by construction
                                 (tests/hotpath_alloc_test.cpp), so the
                                 baseline is zero and a single allocation
                                 creeping back into the hot path trips
                                 the gate exactly.

The "parallel" array (entries matched by shards/partition/exec/opt; only
exec = "parallel" entries carry the gated key):

  * serial_fraction              horizon stalls over total events - the
                                 fraction of the parallel run spent
                                 single-stepping at a sync point instead
                                 of running epochs. Deterministic per
                                 seed, so it gates at the ns tolerance
                                 against creeping re-serialization.

The "open_loop" array (entries matched by "label"):

  * sustained_per_sec            fails when fresh throughput falls below
                                 the baseline by more than the tolerance.
                                 It is sim-time throughput - deterministic
                                 per seed - so any drop is a real service
                                 regression, not runner noise.
  * steady_state_entries_final   fails on ANY increase. A drained service
                                 leaves zero per-update map entries; a
                                 nonzero value is a leak.

The "submission_path" object (the plan-compilation cache):

  * warm_cold_ratio              fails above 0.7 - an absolute bound, not
                                 baseline-relative: a cache hit must cost
                                 well under the full compile pipeline or
                                 the cache has stopped caching.
  * steady_allocs                fails on ANY nonzero value. Past warmup
                                 (every template compiled), submissions
                                 run entirely off warm pools; a single
                                 allocation in the warm window is a
                                 regression.

A baseline section without "open_loop" or "submission_path" passes with a
note (older baselines stay green until regenerated).

Exit status: 0 when every gated metric holds, 1 on regression or malformed
input. Scenarios present in only one side are reported (new scenarios
pass; scenarios dropped from the fresh run fail - a silently skipped
measurement must not read as green).
"""

import json
import os
import sys

NS_KEY = "ns_per_event"
ALLOC_KEY = "steady_allocs"
THROUGHPUT_KEY = "sustained_per_sec"
LEFTOVER_KEY = "steady_state_entries_final"
SERIAL_KEY = "serial_fraction"
RATIO_KEY = "warm_cold_ratio"
DEFAULT_TOLERANCE = 0.10
WARM_COLD_LIMIT = 0.7


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(1)


def baseline_section_for(baseline, bench_id, path):
    for name, doc in baseline.items():
        if isinstance(doc, dict) and doc.get("bench") == bench_id:
            return name, doc
    print(
        f"error: {path} ('{bench_id}') has no matching section in the "
        "baseline - regenerate the baseline after adding a bench",
        file=sys.stderr,
    )
    sys.exit(1)


def check_document(name, base_doc, fresh_doc, tolerance):
    """Returns a list of failure strings for one bench document."""
    failures = []
    base_hot = base_doc.get("hotpath", {})
    fresh_hot = fresh_doc.get("hotpath", {})
    if not isinstance(base_hot, dict) or not isinstance(fresh_hot, dict):
        return [f"{name}: 'hotpath' section missing or not an object"]

    for scenario in sorted(set(base_hot) | set(fresh_hot)):
        base = base_hot.get(scenario)
        fresh = fresh_hot.get(scenario)
        if base is None:
            print(f"  {name}/{scenario}: new scenario (no baseline) - "
                  "passes; regenerate the baseline to start gating it")
            continue
        if fresh is None:
            failures.append(
                f"{name}/{scenario}: present in baseline but missing from "
                "the fresh run")
            continue

        base_ns = base.get(NS_KEY)
        fresh_ns = fresh.get(NS_KEY)
        if isinstance(base_ns, (int, float)) and isinstance(
                fresh_ns, (int, float)) and base_ns > 0:
            ratio = fresh_ns / base_ns
            verdict = "ok" if ratio <= 1.0 + tolerance else "REGRESSION"
            print(f"  {name}/{scenario}: {fresh_ns:.2f} ns/event vs "
                  f"baseline {base_ns:.2f} ({ratio - 1.0:+.1%}, "
                  f"tolerance +{tolerance:.0%}) {verdict}")
            if verdict != "ok":
                failures.append(
                    f"{name}/{scenario}: ns/event regressed "
                    f"{base_ns:.2f} -> {fresh_ns:.2f} "
                    f"(+{(ratio - 1.0):.1%} > +{tolerance:.0%})")

        base_allocs = base.get(ALLOC_KEY)
        fresh_allocs = fresh.get(ALLOC_KEY)
        if isinstance(base_allocs, int) and isinstance(fresh_allocs, int):
            verdict = "ok" if fresh_allocs <= base_allocs else "REGRESSION"
            print(f"  {name}/{scenario}: {fresh_allocs} steady-state "
                  f"allocations vs baseline {base_allocs} {verdict}")
            if verdict != "ok":
                failures.append(
                    f"{name}/{scenario}: steady-state allocations "
                    f"regressed {base_allocs} -> {fresh_allocs} (the hot "
                    "path must stay allocation-free)")
    return failures


def by_label(entries):
    return {
        e["label"]: e
        for e in entries
        if isinstance(e, dict) and isinstance(e.get("label"), str)
    }


def parallel_label(entry):
    opt = "on" if entry.get("speculate") else "off"
    return (f"{entry.get('shards')}shards/{entry.get('partition')}/"
            f"{entry.get('exec')}/opt={opt}")


def check_parallel(name, base_doc, fresh_doc, tolerance):
    """Gates serial_fraction on the parallel-exec entries."""
    failures = []
    base_entries = base_doc.get("parallel")
    if not isinstance(base_entries, list):
        print(f"  {name}/parallel: no baseline section - passes; "
              "regenerate the baseline to start gating it")
        return failures
    fresh_entries = fresh_doc.get("parallel")
    if not isinstance(fresh_entries, list):
        return [f"{name}/parallel: present in baseline but missing from "
                "the fresh run"]

    def gated(entries):
        return {
            parallel_label(e): e
            for e in entries
            if isinstance(e, dict) and isinstance(e.get(SERIAL_KEY),
                                                  (int, float))
        }

    base_map, fresh_map = gated(base_entries), gated(fresh_entries)
    for label in sorted(set(base_map) | set(fresh_map)):
        base = base_map.get(label)
        fresh = fresh_map.get(label)
        if base is None:
            print(f"  {name}/parallel/{label}: new scenario (no baseline) "
                  "- passes")
            continue
        if fresh is None:
            failures.append(
                f"{name}/parallel/{label}: present in baseline but missing "
                "from the fresh run")
            continue
        base_sf, fresh_sf = base[SERIAL_KEY], fresh[SERIAL_KEY]
        # The fraction is deterministic per seed; the tolerance only
        # absorbs float formatting, not runner noise. A zero baseline
        # (fully stall-free) must stay zero.
        limit = base_sf * (1.0 + tolerance) + 1e-9
        verdict = "ok" if fresh_sf <= limit else "REGRESSION"
        print(f"  {name}/parallel/{label}: serial fraction {fresh_sf:.4f} "
              f"vs baseline {base_sf:.4f} (tolerance +{tolerance:.0%}) "
              f"{verdict}")
        if verdict != "ok":
            failures.append(
                f"{name}/parallel/{label}: serial fraction regressed "
                f"{base_sf:.4f} -> {fresh_sf:.4f} (the parallel stepper is "
                "re-serializing)")
    return failures


def check_open_loop(name, base_doc, fresh_doc, tolerance):
    """Gates the open-loop service points; returns failure strings."""
    failures = []
    base_points = base_doc.get("open_loop")
    if not isinstance(base_points, list):
        print(f"  {name}/open_loop: no baseline section - passes; "
              "regenerate the baseline to start gating it")
        return failures
    fresh_points = fresh_doc.get("open_loop")
    if not isinstance(fresh_points, list):
        return [f"{name}/open_loop: present in baseline but missing from "
                "the fresh run"]

    base_map, fresh_map = by_label(base_points), by_label(fresh_points)
    for label in sorted(set(base_map) | set(fresh_map)):
        base = base_map.get(label)
        fresh = fresh_map.get(label)
        if base is None:
            print(f"  {name}/open_loop/{label}: new operating point "
                  "(no baseline) - passes")
            continue
        if fresh is None:
            failures.append(
                f"{name}/open_loop/{label}: present in baseline but "
                "missing from the fresh run")
            continue

        base_tp = base.get(THROUGHPUT_KEY)
        fresh_tp = fresh.get(THROUGHPUT_KEY)
        if isinstance(base_tp, (int, float)) and isinstance(
                fresh_tp, (int, float)) and base_tp > 0:
            ratio = fresh_tp / base_tp
            verdict = "ok" if ratio >= 1.0 - tolerance else "REGRESSION"
            print(f"  {name}/open_loop/{label}: {fresh_tp:.0f} sustained "
                  f"updates/s vs baseline {base_tp:.0f} "
                  f"({ratio - 1.0:+.1%}, tolerance -{tolerance:.0%}) "
                  f"{verdict}")
            if verdict != "ok":
                failures.append(
                    f"{name}/open_loop/{label}: sustained throughput "
                    f"regressed {base_tp:.0f} -> {fresh_tp:.0f} updates/s "
                    f"({(ratio - 1.0):.1%} < -{tolerance:.0%})")

        base_left = base.get(LEFTOVER_KEY)
        fresh_left = fresh.get(LEFTOVER_KEY)
        if isinstance(base_left, int) and isinstance(fresh_left, int):
            verdict = "ok" if fresh_left <= base_left else "REGRESSION"
            print(f"  {name}/open_loop/{label}: {fresh_left} leftover "
                  f"controller entries vs baseline {base_left} {verdict}")
            if verdict != "ok":
                failures.append(
                    f"{name}/open_loop/{label}: leftover controller "
                    f"entries after drain {base_left} -> {fresh_left} "
                    "(per-update state is leaking)")
    return failures


def check_submission_path(name, base_doc, fresh_doc):
    """Gates the plan-cache section; both bounds are absolute."""
    failures = []
    if not isinstance(base_doc.get("submission_path"), dict):
        print(f"  {name}/submission_path: no baseline section - passes; "
              "regenerate the baseline to start gating it")
        return failures
    fresh = fresh_doc.get("submission_path")
    if not isinstance(fresh, dict):
        return [f"{name}/submission_path: present in baseline but missing "
                "from the fresh run"]

    ratio = fresh.get(RATIO_KEY)
    if not isinstance(ratio, (int, float)):
        failures.append(f"{name}/submission_path: '{RATIO_KEY}' missing")
    else:
        verdict = "ok" if ratio <= WARM_COLD_LIMIT else "REGRESSION"
        print(f"  {name}/submission_path: warm/cold {ratio:.4f} "
              f"(limit {WARM_COLD_LIMIT}) {verdict}")
        if verdict != "ok":
            failures.append(
                f"{name}/submission_path: warm submissions cost "
                f"{ratio:.2f}x a cold compile (limit {WARM_COLD_LIMIT}) - "
                "the plan cache is no longer paying for itself")

    allocs = fresh.get(ALLOC_KEY)
    if not isinstance(allocs, int):
        failures.append(f"{name}/submission_path: '{ALLOC_KEY}' missing")
    else:
        verdict = "ok" if allocs == 0 else "REGRESSION"
        print(f"  {name}/submission_path: {allocs} warm-window "
              f"allocations (must be 0) {verdict}")
        if verdict != "ok":
            failures.append(
                f"{name}/submission_path: {allocs} allocations in the "
                "warm submission window (cached submissions must stay "
                "off the heap)")
    return failures


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 1
    try:
        tolerance = float(
            os.environ.get("TSU_BENCH_NS_TOLERANCE", DEFAULT_TOLERANCE))
    except ValueError:
        print("error: TSU_BENCH_NS_TOLERANCE is not a number",
              file=sys.stderr)
        return 1

    baseline = load(argv[1])
    failures = []
    for fresh_path in argv[2:]:
        fresh_doc = load(fresh_path)
        bench_id = fresh_doc.get("bench")
        if not isinstance(bench_id, str):
            print(f"error: {fresh_path} has no 'bench' identifier",
                  file=sys.stderr)
            return 1
        name, base_doc = baseline_section_for(baseline, bench_id, fresh_path)
        print(f"{name} ({fresh_path}):")
        failures.extend(check_document(name, base_doc, fresh_doc, tolerance))
        failures.extend(check_parallel(name, base_doc, fresh_doc, tolerance))
        failures.extend(
            check_open_loop(name, base_doc, fresh_doc, tolerance))
        failures.extend(check_submission_path(name, base_doc, fresh_doc))

    if failures:
        print("\nPERF GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nperf gate: all hotpath metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
